package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/value"
)

// Catalog is the namespace of tables in a Youtopia database instance. Table
// names are case-insensitive, as in the paper's SQL examples.
//
// The catalog also owns the MVCC machinery shared by its tables: the commit
// clock every write and snapshot draws timestamps from, the registry of
// active snapshots whose minimum is the garbage-collection watermark, and
// the catalog-wide conflict/GC counters.
type Catalog struct {
	log    logState
	mu     sync.RWMutex
	tables map[string]*Table
	// ddl counts schema changes (CREATE/DROP TABLE, CREATE INDEX). Cached
	// query plans and prepared-statement artifacts are stamped with the
	// version they were built against and rebuilt when it moves — the DDL
	// invalidation point of the plan cache.
	ddl atomic.Uint64

	// clock is the commit clock: monotonically increasing, bumped by every
	// auto-committed mutation and every Writer commit. A snapshot at ts sees
	// exactly the commits stamped ≤ ts.
	clock atomic.Uint64

	// snapMu guards the active-snapshot ring AND serializes Writer commit
	// publication against snapshot pinning: publishCommit advances the clock
	// and stores the writer's commit state under it, so a snapshot pinned at
	// ts can never observe a transaction publishing at ≤ ts "half-committed"
	// (clock bumped but state not yet visible) — the lost-update hole that
	// would defeat first-committer-wins.
	snapMu sync.Mutex
	snaps  SnapRef // sentinel of a doubly-linked ring of pinned snapshots

	conflicts   atomic.Uint64 // first-committer-wins aborts, cumulative
	gcReclaimed atomic.Uint64 // versions pruned by GC, cumulative

	// writerSeq hands out writer ids, the Txn tags that group one
	// transaction's log records (see LogRecord.Txn).
	writerSeq atomic.Uint64

	// spill, when non-nil, is the disk-backed paging machinery (heap.go):
	// buffer pool, pages directory and the pinned-relation policy. Set once
	// by EnableSpill before any table exists, read-only afterwards.
	spill *spillState
}

// BumpDDL advances the schema version; call after any DDL that can change
// plan validity (table existence, schemas, index presence).
func (c *Catalog) BumpDDL() { c.ddl.Add(1) }

// DDLVersion returns the current schema version.
func (c *Catalog) DDLVersion() uint64 { return c.ddl.Load() }

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	c := &Catalog{tables: make(map[string]*Table)}
	c.snaps.prev = &c.snaps
	c.snaps.next = &c.snaps
	return c
}

// Clock returns the current commit-clock value.
func (c *Catalog) Clock() uint64 { return c.clock.Load() }

// AdvanceClock moves the commit clock forward to at least ts; recovery calls
// it while replaying commit records so post-recovery timestamps stay ahead
// of every pre-crash commit.
func (c *Catalog) AdvanceClock(ts uint64) {
	for {
		cur := c.clock.Load()
		if cur >= ts || c.clock.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// PinSnapshot registers r as an active snapshot at the current clock value
// and returns the snapshot timestamp. The registration keeps the GC
// watermark at or below the timestamp until UnpinSnapshot; r is intrusive,
// so pinning allocates nothing when r is embedded in a longer-lived struct.
func (c *Catalog) PinSnapshot(r *SnapRef) uint64 {
	c.snapMu.Lock()
	r.ts = c.clock.Load()
	r.prev = c.snaps.prev
	r.next = &c.snaps
	r.prev.next = r
	c.snaps.prev = r
	c.snapMu.Unlock()
	return r.ts
}

// UnpinSnapshot releases a registration made by PinSnapshot. It is
// idempotent on an already-unpinned ref.
func (c *Catalog) UnpinSnapshot(r *SnapRef) {
	c.snapMu.Lock()
	if r.next != nil {
		r.prev.next = r.next
		r.next.prev = r.prev
		r.prev, r.next = nil, nil
	}
	c.snapMu.Unlock()
}

// publishCommit atomically assigns w a fresh commit timestamp and publishes
// it. Running under snapMu means no snapshot can be pinned between the clock
// bump and the state store — so any snapshot with ts ≥ the new timestamp is
// guaranteed to see the commit, and any with ts < it is guaranteed not to.
func (c *Catalog) publishCommit(w *Writer) uint64 {
	c.snapMu.Lock()
	ts := c.clock.Add(1)
	w.state.Store(ts)
	c.snapMu.Unlock()
	return ts
}

// Watermark returns the oldest timestamp any active snapshot can read —
// the version-chain GC horizon. With no snapshots pinned it is the current
// clock (everything superseded before now is reclaimable).
func (c *Catalog) Watermark() uint64 {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	wm := c.clock.Load()
	for r := c.snaps.next; r != &c.snaps; r = r.next {
		if r.ts < wm {
			wm = r.ts
		}
	}
	return wm
}

// ActiveSnapshots returns the number of currently pinned snapshots.
func (c *Catalog) ActiveSnapshots() int {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	n := 0
	for r := c.snaps.next; r != &c.snaps; r = r.next {
		n++
	}
	return n
}

// GC prunes version chains in every table against the current watermark and
// returns the number of versions reclaimed (also accumulated in
// GCReclaimed). The txn manager runs this from a background ticker. Each
// table's heap compactor runs right after its sweep, so the dead slots the
// prune just created immediately feed page reclamation (heap.go).
func (c *Catalog) GC() int {
	wm := c.Watermark()
	c.mu.RLock()
	tables := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		tables = append(tables, t)
	}
	c.mu.RUnlock()
	total := 0
	for _, t := range tables {
		total += t.gc(wm)
		t.compactHeap()
	}
	if total > 0 {
		c.gcReclaimed.Add(uint64(total))
	}
	return total
}

// Conflicts returns the cumulative count of first-committer-wins aborts.
func (c *Catalog) Conflicts() uint64 { return c.conflicts.Load() }

// GCReclaimed returns the cumulative count of versions pruned by GC.
func (c *Catalog) GCReclaimed() uint64 { return c.gcReclaimed.Load() }

// VersionStats sums version-chain statistics across all tables: the number
// of chains (rows ever written and not yet fully reclaimed) and stored
// versions. Surfaced by the admin state dump for MVCC debugging.
func (c *Catalog) VersionStats() (chains, versions int) {
	c.mu.RLock()
	tables := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		tables = append(tables, t)
	}
	c.mu.RUnlock()
	for _, t := range tables {
		ch, ver := t.VersionStats()
		chains += ch
		versions += ver
	}
	return
}

func canonical(name string) string { return strings.ToLower(name) }

// Create creates a table. It fails if the name is already taken.
func (c *Catalog) Create(name string, schema *value.Schema, pkCols ...string) (*Table, error) {
	t, err := NewTable(name, schema, pkCols...)
	if err != nil {
		return nil, err
	}
	t.log = &c.log
	t.clock = &c.clock
	t.conflicts = &c.conflicts
	key := canonical(name)
	if c.spill != nil && !c.spill.isPinned(key) {
		// Cold relation: committed tuples page out through the shared pool.
		// Relations pinned by policy (config, answer relations) stay wholly
		// in memory.
		h, err := c.spill.open(key)
		if err != nil {
			return nil, err
		}
		t.heap = h
	}
	c.mu.Lock()
	if _, exists := c.tables[key]; exists {
		c.mu.Unlock()
		if t.heap != nil {
			c.spill.retire(key)
		}
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	c.tables[key] = t
	c.mu.Unlock()
	c.log.emit(LogRecord{Op: OpCreateTable, Table: name, Schema: schema, PK: pkCols})
	return t, nil
}

// Get returns the named table.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[canonical(name)]
	if !ok {
		return nil, fmt.Errorf("%w: table %q", ErrNotFound, name)
	}
	return t, nil
}

// Has reports whether the named table exists.
func (c *Catalog) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[canonical(name)]
	return ok
}

// Drop removes the named table.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := canonical(name)
	t, ok := c.tables[key]
	if !ok {
		return fmt.Errorf("%w: table %q", ErrNotFound, name)
	}
	delete(c.tables, key)
	if t.heap != nil && c.spill != nil {
		c.spill.retire(key)
	}
	c.log.emit(LogRecord{Op: OpDropTable, Table: name})
	return nil
}

// Names returns all table names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		names = append(names, t.Name())
	}
	sort.Strings(names)
	return names
}
