package storage

import (
	"errors"
	"testing"
)

func TestCatalogCreateGetDrop(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Create("Flights", flightsSchema(), "fno"); err != nil {
		t.Fatal(err)
	}
	if !c.Has("flights") || !c.Has("FLIGHTS") {
		t.Error("table names must be case-insensitive")
	}
	if _, err := c.Create("FLIGHTS", flightsSchema()); err == nil {
		t.Error("duplicate create accepted")
	}
	tbl, err := c.Get("fLiGhTs")
	if err != nil || tbl.Name() != "Flights" {
		t.Errorf("Get: %v, %v", tbl, err)
	}
	if err := c.Drop("Flights"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("Flights"); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after drop: %v", err)
	}
	if err := c.Drop("Flights"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double drop: %v", err)
	}
}

func TestCatalogNames(t *testing.T) {
	c := NewCatalog()
	c.Create("Hotels", flightsSchema())
	c.Create("Airlines", flightsSchema())
	c.Create("Flights", flightsSchema())
	names := c.Names()
	want := []string{"Airlines", "Flights", "Hotels"}
	if len(names) != 3 {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names = %v, want %v", names, want)
			break
		}
	}
}

func TestCatalogCreatePropagatesTableError(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Create("x", flightsSchema(), "nosuch"); err == nil {
		t.Error("bad PK column accepted")
	}
	if c.Has("x") {
		t.Error("failed create left table behind")
	}
}
