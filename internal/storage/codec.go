package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/value"
)

// This file is the one binary codec for typed values shared by everything
// that serializes tuples: the write-ahead log's record payloads (format v2,
// internal/wal/binary.go delegates here) and the paged heap files behind the
// buffer pool (page.go). Keeping a single implementation means a tuple's
// on-page bytes and its WAL bytes are the same encoding, so the two disk
// formats can never drift apart.
//
// Encoding: a value is a one-byte type tag followed by its payload —
//
//	0            NULL, no payload
//	1 varint     INT
//	2 8 bytes    FLOAT, IEEE-754 bits little-endian
//	3 len+bytes  STRING, uvarint length prefix
//	4 1 byte     BOOL, 0 or 1
//
// A tuple is a uvarint column count followed by its values.

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// AppendString appends a uvarint length prefix followed by the raw bytes.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendValue appends one typed value (tag byte + payload).
func AppendValue(dst []byte, v value.Value) []byte {
	switch v.Type() {
	case value.TypeInt:
		dst = append(dst, 1)
		dst = binary.AppendVarint(dst, v.Int())
	case value.TypeFloat:
		dst = append(dst, 2)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float()))
	case value.TypeString:
		dst = append(dst, 3)
		dst = AppendString(dst, v.Str())
	case value.TypeBool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		dst = append(dst, 4, b)
	default: // NULL
		dst = append(dst, 0)
	}
	return dst
}

// AppendTuple appends a uvarint column count followed by every value.
func AppendTuple(dst []byte, t value.Tuple) []byte {
	dst = AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeValue decodes one value from the front of b, returning it and the
// number of bytes consumed. Corrupt input degrades to an error, never a
// panic, so callers validating untrusted bytes (the WAL decoder's contract)
// can rely on it.
func DecodeValue(b []byte) (value.Value, int, error) {
	if len(b) == 0 {
		return value.Null, 0, fmt.Errorf("storage: value encoding truncated")
	}
	switch tag := b[0]; tag {
	case 0:
		return value.Null, 1, nil
	case 1:
		i, n := binary.Varint(b[1:])
		if n <= 0 {
			return value.Null, 0, fmt.Errorf("storage: bad varint in value encoding")
		}
		return value.NewInt(i), 1 + n, nil
	case 2:
		if len(b) < 9 {
			return value.Null, 0, fmt.Errorf("storage: value encoding truncated (want 8 float bytes, have %d)", len(b)-1)
		}
		return value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b[1:]))), 9, nil
	case 3:
		sl, n := binary.Uvarint(b[1:])
		if n <= 0 {
			return value.Null, 0, fmt.Errorf("storage: bad string length in value encoding")
		}
		off := 1 + n
		if sl > uint64(len(b)-off) {
			return value.Null, 0, fmt.Errorf("storage: string length %d exceeds encoding", sl)
		}
		return value.NewString(string(b[off : off+int(sl)])), off + int(sl), nil
	case 4:
		if len(b) < 2 {
			return value.Null, 0, fmt.Errorf("storage: value encoding truncated (bool payload)")
		}
		return value.NewBool(b[1] != 0), 2, nil
	default:
		return value.Null, 0, fmt.Errorf("storage: unknown value tag %d", tag)
	}
}

// DecodeTuple decodes a tuple written by AppendTuple from the front of b,
// returning it and the number of bytes consumed.
func DecodeTuple(b []byte) (value.Tuple, int, error) {
	cnt, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("storage: bad column count in tuple encoding")
	}
	if cnt > uint64(len(b)-n) {
		// Each value needs at least its tag byte; bound allocations on
		// corrupt counts.
		return nil, 0, fmt.Errorf("storage: column count %d exceeds encoding", cnt)
	}
	off := n
	tup := make(value.Tuple, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		v, vn, err := DecodeValue(b[off:])
		if err != nil {
			return nil, 0, err
		}
		tup = append(tup, v)
		off += vn
	}
	return tup, off, nil
}
