package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/value"
)

// A heapFile is the paged backing store of one spillable table: an
// append-only sequence of PageSize pages under the catalog's pages
// directory. Records are placed into an in-memory tail page; when the next
// record does not fit, the tail is sealed — handed to the buffer pool as a
// dirty frame (or written straight to disk when every frame is pinned) — and
// a fresh tail begins. Sealed pages are immutable forever.
//
// The heap is SCRATCH, not a recovery source: the WAL remains the single
// durable truth, and startup truncates and rebuilds every heap by replaying
// the newest snapshot segment plus the log tail through the ordinary insert
// path. That keeps the PR-3 crash-safety story (and the PR-7 replication
// retention contract) byte-for-byte unchanged — a torn heap page after
// kill -9 is simply thrown away.
//
// Concurrency: place is called only under the owning table's exclusive
// latch, so the tail mutates single-threadedly. Readers resolve a pageRef
// with load, possibly holding no table latch at all (ScanAt materializes
// after unlatching): that is safe because refs are written once, sealed
// pages are immutable, and the current tail is published through an atomic
// pointer whose buffer is never recycled — an in-flight reader keeps
// decoding a superseded tail buffer while the writer fills a fresh one.
type heapFile struct {
	name string // canonical table name (diagnostics, stats)
	path string
	f    *os.File
	pool *Pool

	// tail is the page currently accepting records. Swapped (never mutated
	// in place: the buffer of a sealed tail is left behind for late readers)
	// under the owning table's exclusive latch.
	tail atomic.Pointer[tailPage]

	payload []byte // AppendTuple scratch; guarded by the table's latch
	rec     []byte // record scratch; guarded by the table's latch

	// placed counts records ever placed into the heap. Sealed pages are
	// immutable and slots are never reclaimed, so placed minus the table's
	// still-referenced spilled versions is the heap's dead-slot count — the
	// "heap files only grow" ceiling made observable.
	placed atomic.Uint64
}

type tailPage struct {
	no  uint32
	buf []byte
}

func newTailPage(no uint32) *tailPage {
	tp := &tailPage{no: no, buf: make([]byte, PageSize)}
	setPageUsed(tp.buf, pageHeaderLen)
	return tp
}

func openHeapFile(dir, name string, pool *Pool) (*heapFile, error) {
	path := filepath.Join(dir, name+".heap")
	// O_TRUNC: heaps never carry state across process lifetimes (see above).
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open heap for table %s: %w", name, err)
	}
	h := &heapFile{name: name, path: path, f: f, pool: pool}
	h.tail.Store(newTailPage(0))
	return h, nil
}

func (h *heapFile) writePage(no uint32, buf []byte) error {
	_, err := h.f.WriteAt(buf, int64(no)*PageSize)
	return err
}

func (h *heapFile) readPage(no uint32, buf []byte) error {
	_, err := h.f.ReadAt(buf, int64(no)*PageSize)
	return err
}

// pages returns the number of pages the heap has begun (sealed + tail).
func (h *heapFile) pages() int { return int(h.tail.Load().no) + 1 }

// place appends the tuple's record to the heap and returns its ref. Called
// only under the owning table's exclusive latch. ErrTupleTooLarge means the
// record cannot fit any page; the caller keeps the tuple resident instead.
func (h *heapFile) place(id RowID, tup value.Tuple) (pageRef, error) {
	h.payload = AppendTuple(h.payload[:0], tup)
	h.rec = appendHeapRecord(h.rec[:0], id, h.payload)
	if len(h.rec) > maxRecordLen {
		return pageRef{}, fmt.Errorf("%w: %d bytes encoded, page holds %d", ErrTupleTooLarge, len(h.rec), maxRecordLen)
	}
	tp := h.tail.Load()
	used := pageUsed(tp.buf)
	if used+len(h.rec) > PageSize {
		if err := h.seal(tp); err != nil {
			return pageRef{}, err
		}
		tp = newTailPage(tp.no + 1)
		used = pageHeaderLen
		h.tail.Store(tp)
	}
	copy(tp.buf[used:], h.rec)
	setPageUsed(tp.buf, used+len(h.rec))
	setPageCount(tp.buf, pageCount(tp.buf)+1)
	h.placed.Add(1)
	return pageRef{page: tp.no, off: uint16(used), n: uint16(len(h.rec))}, nil
}

// seal hands a full tail page to the buffer pool as a dirty resident frame;
// when the pool has no evictable frame, the page bypasses it straight to
// disk (reads fall back symmetrically), so an exhausted pool degrades
// throughput instead of failing writes.
func (h *heapFile) seal(tp *tailPage) error {
	err := h.pool.adopt(h, tp.no, tp.buf)
	if err == nil {
		return nil
	}
	if err == ErrPoolExhausted {
		return h.writePage(tp.no, tp.buf)
	}
	return err
}

// load resolves a ref to its decoded tuple. Safe without the table latch
// (see the type comment). Misses read through the buffer pool; when the pool
// is exhausted the page is read unbuffered instead — by the time a sealed
// page is absent from the pool it has been written back, so the disk copy is
// current.
func (h *heapFile) load(ref pageRef) (value.Tuple, error) {
	tp := h.tail.Load()
	if ref.page == tp.no {
		return decodeRefRecord(tp.buf, ref)
	}
	fi, err := h.pool.fetch(h, ref.page)
	if err == ErrPoolExhausted {
		buf := make([]byte, PageSize)
		if rerr := h.readPage(ref.page, buf); rerr != nil {
			return nil, rerr
		}
		return decodeRefRecord(buf, ref)
	}
	if err != nil {
		return nil, err
	}
	tup, derr := decodeRefRecord(h.pool.frames[fi].buf, ref)
	h.pool.unpin(fi)
	return tup, derr
}

func decodeRefRecord(page []byte, ref pageRef) (value.Tuple, error) {
	if int(ref.off)+int(ref.n) > len(page) {
		return nil, fmt.Errorf("storage: heap ref out of page bounds (off %d, n %d)", ref.off, ref.n)
	}
	_, tup, err := decodeHeapRecord(page[ref.off : int(ref.off)+int(ref.n)])
	return tup, err
}

// heapMustLoad resolves a ref or panics: heap files are engine-managed
// scratch on a local disk, so a failed load means lost internal state — the
// same invariant class as a corrupted in-memory chain, not a user error the
// read API could meaningfully return.
func heapMustLoad(h *heapFile, ref pageRef) value.Tuple {
	if h == nil {
		panic("storage: spilled version without a heap (table detached mid-read?)")
	}
	tup, err := h.load(ref)
	if err != nil {
		panic(fmt.Sprintf("storage: heap load for table %s failed: %v", h.name, err))
	}
	return tup
}

// spillState is a catalog's paging policy and machinery: the shared buffer
// pool, the pages directory, the set of relations pinned fully in memory,
// and the open heap files.
type spillState struct {
	dir  string
	pool *Pool

	mu     sync.Mutex
	pinned map[string]bool
	heaps  map[string]*heapFile
	// closed heaps are unlinked immediately but their descriptors stay open
	// until CloseSpill, so a reader that captured a ref just before a drop or
	// pin-resident detach still resolves it (POSIX unlink semantics).
	graveyard []*heapFile
}

func (sp *spillState) isPinned(key string) bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.pinned[key]
}

func (sp *spillState) open(key string) (*heapFile, error) {
	h, err := openHeapFile(sp.dir, key, sp.pool)
	if err != nil {
		return nil, err
	}
	sp.mu.Lock()
	sp.heaps[key] = h
	sp.mu.Unlock()
	return h, nil
}

// retire unlinks a heap (table dropped or pinned resident) while keeping its
// descriptor readable until CloseSpill.
func (sp *spillState) retire(key string) {
	sp.mu.Lock()
	h := sp.heaps[key]
	if h != nil {
		delete(sp.heaps, key)
		sp.graveyard = append(sp.graveyard, h)
	}
	sp.mu.Unlock()
	if h != nil {
		sp.pool.invalidate(h)
		os.Remove(h.path) //nolint:errcheck // scratch; best effort
	}
}

// EnableSpill turns on disk-backed paged storage for the catalog: tables
// created from now on spill their committed tuples to heap files under dir
// through a buffer pool of poolPages frames — except relations named in
// pinned (and any later marked via PinResident), which stay fully resident.
// Must be called on an empty catalog, before recovery replays any table.
func (c *Catalog) EnableSpill(dir string, poolPages int, pinned []string) error {
	if c.spill != nil {
		return fmt.Errorf("storage: spill already enabled (dir %s)", c.spill.dir)
	}
	c.mu.RLock()
	populated := len(c.tables) > 0
	c.mu.RUnlock()
	if populated {
		return fmt.Errorf("storage: EnableSpill requires an empty catalog")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: create pages directory: %w", err)
	}
	sp := &spillState{
		dir:    dir,
		pool:   NewPool(poolPages),
		pinned: make(map[string]bool, len(pinned)),
		heaps:  make(map[string]*heapFile),
	}
	for _, name := range pinned {
		sp.pinned[canonical(name)] = true
	}
	c.spill = sp
	return nil
}

// PinResident marks a relation as fully in-memory — the policy knob that
// keeps hot coordination relations (answer relations pin themselves through
// this) out of the page path. If the table already exists with spilled
// versions, they are materialized back into memory and its heap is retired.
func (c *Catalog) PinResident(name string) {
	sp := c.spill
	if sp == nil {
		return
	}
	key := canonical(name)
	sp.mu.Lock()
	sp.pinned[key] = true
	sp.mu.Unlock()
	c.mu.RLock()
	t := c.tables[key]
	c.mu.RUnlock()
	if t != nil && t.detachHeap() {
		sp.retire(key)
	}
}

// detachHeap materializes every spilled version and drops the table's heap
// reference; returns whether there was one. After it returns, no reader can
// capture a new ref into the heap (writes and captures both require t.mu).
func (t *Table) detachHeap() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.heap == nil {
		return false
	}
	for _, h := range t.rows {
		for v := h; v != nil; v = v.prev {
			if v.tup == nil {
				v.tup = heapMustLoad(t.heap, v.ref)
			}
		}
	}
	t.heap = nil
	return true
}

// FlushPool writes every dirty buffered page back to disk — the checkpoint
// hook the WAL compaction path drives. No-op without spill enabled.
func (c *Catalog) FlushPool() error {
	if c.spill == nil {
		return nil
	}
	return c.spill.pool.FlushDirty()
}

// PoolStats reports the buffer pool and heap footprint, or false when spill
// is not enabled.
func (c *Catalog) PoolStats() (PoolStats, bool) {
	sp := c.spill
	if sp == nil {
		return PoolStats{}, false
	}
	stats := sp.pool.Stats()
	sp.mu.Lock()
	stats.SpilledTables = len(sp.heaps)
	stats.PinnedTables = len(sp.pinned)
	for name, h := range sp.heaps {
		pages := h.pages()
		stats.HeapPages += pages
		stats.Tables = append(stats.Tables, PoolTableInfo{Name: name, Pages: pages, placed: h.placed.Load()})
	}
	sp.mu.Unlock()
	// Dead slots are computed outside sp.mu: spilledSlots takes each table's
	// latch, and placed was captured first, so a racing insert can only make
	// the subtraction conservative (clamped at zero).
	for i := range stats.Tables {
		ti := &stats.Tables[i]
		t, err := c.Get(ti.Name)
		if err != nil {
			continue
		}
		if live := t.spilledSlots(); ti.placed > live {
			ti.DeadSlots = ti.placed - live
		}
		stats.DeadSlots += ti.DeadSlots
	}
	sort.Slice(stats.Tables, func(i, j int) bool { return stats.Tables[i].Name < stats.Tables[j].Name })
	return stats, true
}

// CloseSpill closes every heap file (live and retired). The owning system
// calls it on shutdown; the catalog must not be used for spillable reads
// afterwards.
func (c *Catalog) CloseSpill() {
	sp := c.spill
	if sp == nil {
		return
	}
	sp.mu.Lock()
	heaps := make([]*heapFile, 0, len(sp.heaps)+len(sp.graveyard))
	for _, h := range sp.heaps {
		heaps = append(heaps, h)
	}
	heaps = append(heaps, sp.graveyard...)
	sp.graveyard = nil
	sp.mu.Unlock()
	for _, h := range heaps {
		h.f.Close() //nolint:errcheck // scratch files; nothing to preserve
	}
}
