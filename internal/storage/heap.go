package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/value"
)

// A heapFile is the paged backing store of one spillable table: a sequence
// of PageSize pages under the catalog's pages directory. Records are placed
// into an in-memory tail page; when the next record does not fit, the tail
// is sealed — handed to the buffer pool as a dirty frame (or written
// straight to disk when every frame is pinned) — and a fresh tail begins.
// A sealed page's bytes are immutable for as long as any reference into it
// can exist; once every slot on it is dead the page is reclaimed onto the
// free list and eventually reused by the tail allocator (see below).
//
// The heap is SCRATCH, not a recovery source: the WAL remains the single
// durable truth, and startup truncates and rebuilds every heap by replaying
// the newest snapshot segment plus the log tail through the ordinary insert
// path. That keeps the PR-3 crash-safety story (and the PR-7 replication
// retention contract) byte-for-byte unchanged — a torn heap page after
// kill -9 is simply thrown away.
//
// Concurrency: place is called only under the owning table's exclusive
// latch, so the tail mutates single-threadedly. Readers resolve a pageRef
// with load, possibly holding no table latch at all (ScanAt and GetRefAt
// decode after unlatching): that is safe because refs are captured under a
// shared latch, sealed pages stay immutable while referenced, and the
// current tail is published through an atomic pointer whose buffer is never
// mutated after sealing — an in-flight reader keeps decoding a superseded
// tail buffer while the writer fills a fresh one.
//
// Space reclamation: every page tracks how many records were placed on it
// and how many are still referenced by some version chain (live). Slots die
// when a spilled version is materialized back, pruned by GC, or rewritten
// by the page compactor; when a sealed page's live count hits zero it moves
// to the free list and the tail allocator reuses it instead of growing the
// file. Reuse is gated on the readers counter: a latchless reader
// increments it (under the shared latch, BEFORE capturing refs) and
// decrements it after decoding, so a page is never rewritten while a stale
// ref into it might still be resolved — when readers are present the
// allocator simply grows the file as before.
type heapFile struct {
	name string // canonical table name (diagnostics, stats)
	path string
	f    HeapFile
	pool *Pool
	// id feeds the pool's shard hash, so two heaps' pages with equal numbers
	// land on different shards.
	id uint64

	// tail is the page currently accepting records. Swapped (never mutated
	// in place: the buffer of a sealed tail is left behind for late readers)
	// under the owning table's exclusive latch.
	tail atomic.Pointer[tailPage]

	payload []byte // AppendTuple scratch; guarded by the table's latch
	rec     []byte // record scratch; guarded by the table's latch

	// readers counts latchless readers currently holding captured refs (see
	// the type comment). Incremented under the table's shared latch, checked
	// by the tail allocator under the exclusive latch.
	readers atomic.Int64

	// statsMu guards the reclamation bookkeeping below. All mutation happens
	// under the owning table's exclusive latch; the mutex exists so PoolStats
	// can read a consistent snapshot from other goroutines.
	statsMu   sync.Mutex
	pageStats []pageStat // indexed by page number
	free      []uint32   // fully-dead sealed pages awaiting reuse
	maxPage   uint32     // highest page number ever allocated
	deadSlots uint64     // dead records still occupying allocated pages
	reclaimed uint64     // pages ever moved to the free list, cumulative
}

// pageStat is one page's slot accounting: how many records were placed on
// it, and how many are still referenced by a version chain.
type pageStat struct {
	placed int32
	live   int32
}

// heapIDs hands each heapFile a distinct shard-hash identity.
var heapIDs atomic.Uint64

type tailPage struct {
	no  uint32
	buf []byte
}

func newTailPage(no uint32) *tailPage {
	tp := &tailPage{no: no, buf: make([]byte, PageSize)}
	setPageUsed(tp.buf, pageHeaderLen)
	return tp
}

// HeapFile is the I/O surface a heap needs from its backing file.
type HeapFile interface {
	io.ReaderAt
	io.WriterAt
	io.Closer
}

// HeapFS abstracts the filesystem heap files live on — the seam
// fault-injection tests and the WAL compaction scratch use to instrument or
// bound heap I/O. The zero default is the real OS filesystem.
type HeapFS interface {
	OpenFile(name string, flag int, perm os.FileMode) (HeapFile, error)
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
}

type osHeapFS struct{}

func (osHeapFS) OpenFile(name string, flag int, perm os.FileMode) (HeapFile, error) {
	return os.OpenFile(name, flag, perm)
}
func (osHeapFS) Remove(name string) error                   { return os.Remove(name) }
func (osHeapFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func openHeapFile(fs HeapFS, dir, name string, pool *Pool) (*heapFile, error) {
	path := filepath.Join(dir, name+".heap")
	// O_TRUNC: heaps never carry state across process lifetimes (see above).
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open heap for table %s: %w", name, err)
	}
	h := &heapFile{name: name, path: path, f: f, pool: pool, id: heapIDs.Add(1)}
	h.tail.Store(newTailPage(0))
	h.pageStats = make([]pageStat, 1)
	return h, nil
}

func (h *heapFile) writePage(no uint32, buf []byte) error {
	_, err := h.f.WriteAt(buf, int64(no)*PageSize)
	return err
}

func (h *heapFile) readPage(no uint32, buf []byte) error {
	_, err := h.f.ReadAt(buf, int64(no)*PageSize)
	return err
}

// usedPages returns the number of pages currently holding data (sealed pages
// with live or not-yet-reclaimed records, plus the tail); freePages returns
// the reclaimed pages awaiting reuse.
func (h *heapFile) usedPages() (used, free int) {
	h.statsMu.Lock()
	defer h.statsMu.Unlock()
	return int(h.maxPage) + 1 - len(h.free), len(h.free)
}

// reclaimStats returns the heap's dead-slot and reclaimed-page counters.
func (h *heapFile) reclaimStats() (dead, reclaimed uint64) {
	h.statsMu.Lock()
	defer h.statsMu.Unlock()
	return h.deadSlots, h.reclaimed
}

// nextTailNo allocates the page number for a fresh tail: a reclaimed page
// from the free list when no latchless reader could still resolve a stale
// ref into it (the readers gate), else a brand-new page. Called under the
// owning table's exclusive latch. A reused page is discarded from the pool
// first so no stale frame survives.
func (h *heapFile) nextTailNo() uint32 {
	h.statsMu.Lock()
	if len(h.free) > 0 && h.readers.Load() == 0 {
		no := h.free[len(h.free)-1]
		h.free = h.free[:len(h.free)-1]
		h.pageStats[no] = pageStat{}
		h.statsMu.Unlock()
		h.pool.discardPage(h, no)
		return no
	}
	h.maxPage++
	no := h.maxPage
	for uint32(len(h.pageStats)) <= no {
		h.pageStats = append(h.pageStats, pageStat{})
	}
	h.statsMu.Unlock()
	return no
}

// slotPlaced records a new live record on the page. Called under the owning
// table's exclusive latch (from place).
func (h *heapFile) slotPlaced(no uint32) {
	h.statsMu.Lock()
	h.pageStats[no].placed++
	h.pageStats[no].live++
	h.statsMu.Unlock()
}

// slotDied records that a spilled record on the page is no longer referenced
// by any version chain — it was materialized back into memory, pruned by
// GC, or rewritten by the compactor. When the last live record of a sealed
// page dies, the page moves to the free list (its dead slots stop counting:
// the space is reusable). Called under the owning table's exclusive latch.
func (h *heapFile) slotDied(no uint32) {
	h.statsMu.Lock()
	ps := &h.pageStats[no]
	ps.live--
	h.deadSlots++
	if ps.live <= 0 && no != h.tail.Load().no {
		h.deadSlots -= uint64(ps.placed)
		*ps = pageStat{}
		h.free = append(h.free, no)
		h.reclaimed++
	}
	h.statsMu.Unlock()
}

// maybeFreeSealed frees a just-sealed page whose every slot already died
// while it was still the tail (slotDied skips the active tail, and the
// compactor skips fully-dead pages because they free themselves — this is
// the one window both would miss). Called under the owning table's exclusive
// latch, after the new tail is published.
func (h *heapFile) maybeFreeSealed(no uint32) {
	h.statsMu.Lock()
	ps := &h.pageStats[no]
	if ps.placed > 0 && ps.live <= 0 && no != h.tail.Load().no {
		h.deadSlots -= uint64(ps.placed)
		*ps = pageStat{}
		h.free = append(h.free, no)
		h.reclaimed++
	}
	h.statsMu.Unlock()
}

// compactionVictims returns the sealed pages worth rewriting: at least half
// their records are dead but some are still live (fully-dead pages free
// themselves in slotDied). Called under the owning table's exclusive latch.
func (h *heapFile) compactionVictims() map[uint32]bool {
	tailNo := h.tail.Load().no
	h.statsMu.Lock()
	defer h.statsMu.Unlock()
	var victims map[uint32]bool
	for no, ps := range h.pageStats {
		if uint32(no) == tailNo || ps.placed == 0 || ps.live <= 0 || ps.live*2 > ps.placed {
			continue
		}
		if victims == nil {
			victims = make(map[uint32]bool)
		}
		victims[uint32(no)] = true
	}
	return victims
}

// place appends the tuple's record to the heap and returns its ref. Called
// only under the owning table's exclusive latch. ErrTupleTooLarge means the
// record cannot fit any page; the caller keeps the tuple resident instead.
func (h *heapFile) place(id RowID, tup value.Tuple) (pageRef, error) {
	h.payload = AppendTuple(h.payload[:0], tup)
	h.rec = appendHeapRecord(h.rec[:0], id, h.payload)
	if len(h.rec) > maxRecordLen {
		return pageRef{}, fmt.Errorf("%w: %d bytes encoded, page holds %d", ErrTupleTooLarge, len(h.rec), maxRecordLen)
	}
	tp := h.tail.Load()
	used := pageUsed(tp.buf)
	if used+len(h.rec) > PageSize {
		if err := h.seal(tp); err != nil {
			return pageRef{}, err
		}
		sealed := tp.no
		tp = newTailPage(h.nextTailNo())
		used = pageHeaderLen
		h.tail.Store(tp)
		h.maybeFreeSealed(sealed)
	}
	copy(tp.buf[used:], h.rec)
	setPageUsed(tp.buf, used+len(h.rec))
	setPageCount(tp.buf, pageCount(tp.buf)+1)
	h.slotPlaced(tp.no)
	return pageRef{page: tp.no, off: uint16(used), n: uint16(len(h.rec))}, nil
}

// seal hands a full tail page to the buffer pool as a dirty resident frame;
// when the pool has no evictable frame, the page bypasses it straight to
// disk (reads fall back symmetrically), so an exhausted pool degrades
// throughput instead of failing writes.
func (h *heapFile) seal(tp *tailPage) error {
	err := h.pool.adopt(h, tp.no, tp.buf)
	if err == nil {
		return nil
	}
	if err == ErrPoolExhausted {
		return h.writePage(tp.no, tp.buf)
	}
	return err
}

// load resolves a ref to its decoded tuple. Safe without the table latch for
// refs covered by the readers gate (see the type comment). Misses read
// through the buffer pool; when the pool is exhausted the page is read
// unbuffered instead — by the time a sealed page is absent from the pool it
// has been written back, so the disk copy is current.
func (h *heapFile) load(ref pageRef) (value.Tuple, error) {
	tp := h.tail.Load()
	if ref.page == tp.no {
		return decodeRefRecord(tp.buf, ref)
	}
	f, err := h.pool.fetch(h, ref.page)
	if err == ErrPoolExhausted {
		buf := make([]byte, PageSize)
		if rerr := h.readPage(ref.page, buf); rerr != nil {
			return nil, rerr
		}
		return decodeRefRecord(buf, ref)
	}
	if err != nil {
		return nil, err
	}
	tup, derr := decodeRefRecord(f.buf, ref)
	h.pool.unpin(f)
	return tup, derr
}

func decodeRefRecord(page []byte, ref pageRef) (value.Tuple, error) {
	if int(ref.off)+int(ref.n) > len(page) {
		return nil, fmt.Errorf("storage: heap ref out of page bounds (off %d, n %d)", ref.off, ref.n)
	}
	_, tup, err := decodeHeapRecord(page[ref.off : int(ref.off)+int(ref.n)])
	return tup, err
}

// heapMustLoad resolves a ref or panics: heap files are engine-managed
// scratch on a local disk, so a failed load means lost internal state — the
// same invariant class as a corrupted in-memory chain, not a user error the
// read API could meaningfully return.
func heapMustLoad(h *heapFile, ref pageRef) value.Tuple {
	if h == nil {
		panic("storage: spilled version without a heap (table detached mid-read?)")
	}
	tup, err := h.load(ref)
	if err != nil {
		panic(fmt.Sprintf("storage: heap load for table %s failed: %v", h.name, err))
	}
	return tup
}

// spillState is a catalog's paging policy and machinery: the shared buffer
// pool, the pages directory, the set of relations pinned fully in memory,
// and the open heap files.
type spillState struct {
	dir  string
	pool *Pool
	fs   HeapFS

	mu     sync.Mutex
	pinned map[string]bool
	heaps  map[string]*heapFile
	// closed heaps are unlinked immediately but their descriptors stay open
	// until CloseSpill, so a reader that captured a ref just before a drop or
	// pin-resident detach still resolves it (POSIX unlink semantics).
	graveyard []*heapFile
}

func (sp *spillState) isPinned(key string) bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.pinned[key]
}

func (sp *spillState) open(key string) (*heapFile, error) {
	h, err := openHeapFile(sp.fs, sp.dir, key, sp.pool)
	if err != nil {
		return nil, err
	}
	sp.mu.Lock()
	sp.heaps[key] = h
	sp.mu.Unlock()
	return h, nil
}

// retire unlinks a heap (table dropped or pinned resident) while keeping its
// descriptor readable until CloseSpill.
func (sp *spillState) retire(key string) {
	sp.mu.Lock()
	h := sp.heaps[key]
	if h != nil {
		delete(sp.heaps, key)
		sp.graveyard = append(sp.graveyard, h)
	}
	sp.mu.Unlock()
	if h != nil {
		sp.pool.invalidate(h)
		sp.fs.Remove(h.path) //nolint:errcheck // scratch; best effort
	}
}

// SpillOptions configures disk-backed paged storage for a catalog.
type SpillOptions struct {
	Dir        string   // pages directory (created if absent)
	PoolPages  int      // buffer pool frames (minimum 1)
	PoolShards int      // pool shards; 0 picks min(GOMAXPROCS, pages/8), at least 1
	Pinned     []string // relations kept fully resident by policy
	FS         HeapFS   // heap filesystem; nil uses the OS
}

// EnableSpill turns on disk-backed paged storage for the catalog: tables
// created from now on spill their committed tuples to heap files under dir
// through a buffer pool of poolPages frames — except relations named in
// pinned (and any later marked via PinResident), which stay fully resident.
// Must be called on an empty catalog, before recovery replays any table.
func (c *Catalog) EnableSpill(dir string, poolPages int, pinned []string) error {
	return c.EnableSpillOpts(SpillOptions{Dir: dir, PoolPages: poolPages, Pinned: pinned})
}

// EnableSpillOpts is EnableSpill with the full option set (shard count,
// filesystem seam).
func (c *Catalog) EnableSpillOpts(o SpillOptions) error {
	if c.spill != nil {
		return fmt.Errorf("storage: spill already enabled (dir %s)", c.spill.dir)
	}
	c.mu.RLock()
	populated := len(c.tables) > 0
	c.mu.RUnlock()
	if populated {
		return fmt.Errorf("storage: EnableSpill requires an empty catalog")
	}
	fs := o.FS
	if fs == nil {
		fs = osHeapFS{}
	}
	if err := fs.MkdirAll(o.Dir, 0o755); err != nil {
		return fmt.Errorf("storage: create pages directory: %w", err)
	}
	sp := &spillState{
		dir:    o.Dir,
		pool:   NewPoolShards(o.PoolPages, o.PoolShards),
		fs:     fs,
		pinned: make(map[string]bool, len(o.Pinned)),
		heaps:  make(map[string]*heapFile),
	}
	for _, name := range o.Pinned {
		sp.pinned[canonical(name)] = true
	}
	c.spill = sp
	return nil
}

// PinResident marks a relation as fully in-memory — the policy knob that
// keeps hot coordination relations (answer relations pin themselves through
// this) out of the page path. If the table already exists with spilled
// versions, they are materialized back into memory and its heap is retired.
func (c *Catalog) PinResident(name string) {
	sp := c.spill
	if sp == nil {
		return
	}
	key := canonical(name)
	sp.mu.Lock()
	sp.pinned[key] = true
	sp.mu.Unlock()
	c.mu.RLock()
	t := c.tables[key]
	c.mu.RUnlock()
	if t != nil && t.detachHeap() {
		sp.retire(key)
	}
}

// detachHeap materializes every spilled version and drops the table's heap
// reference; returns whether there was one. After it returns, no reader can
// capture a new ref into the heap (writes and captures both require t.mu).
// Slot accounting is skipped: the whole heap is being retired.
func (t *Table) detachHeap() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.heap == nil {
		return false
	}
	for _, h := range t.rows {
		for v := h; v != nil; v = v.prev {
			if v.tup == nil {
				v.tup = heapMustLoad(t.heap, v.ref)
			}
		}
	}
	t.heap = nil
	return true
}

// FlushPool writes every dirty buffered page back to disk — the checkpoint
// hook the WAL compaction path drives. No-op without spill enabled.
func (c *Catalog) FlushPool() error {
	if c.spill == nil {
		return nil
	}
	return c.spill.pool.FlushDirty()
}

// PoolStats reports the buffer pool and heap footprint, or false when spill
// is not enabled.
func (c *Catalog) PoolStats() (PoolStats, bool) {
	sp := c.spill
	if sp == nil {
		return PoolStats{}, false
	}
	stats := sp.pool.Stats()
	sp.mu.Lock()
	stats.SpilledTables = len(sp.heaps)
	stats.PinnedTables = len(sp.pinned)
	for name, h := range sp.heaps {
		used, free := h.usedPages()
		dead, reclaimed := h.reclaimStats()
		stats.HeapPages += used
		stats.FreePages += free
		stats.DeadSlots += dead
		stats.ReclaimedPages += reclaimed
		stats.Tables = append(stats.Tables, PoolTableInfo{
			Name: name, Pages: used, FreePages: free, DeadSlots: dead,
		})
	}
	sp.mu.Unlock()
	sort.Slice(stats.Tables, func(i, j int) bool { return stats.Tables[i].Name < stats.Tables[j].Name })
	return stats, true
}

// CloseSpill closes every heap file (live and retired). The owning system
// calls it on shutdown; the catalog must not be used for spillable reads
// afterwards.
func (c *Catalog) CloseSpill() {
	sp := c.spill
	if sp == nil {
		return
	}
	sp.mu.Lock()
	heaps := make([]*heapFile, 0, len(sp.heaps)+len(sp.graveyard))
	for _, h := range sp.heaps {
		heaps = append(heaps, h)
	}
	heaps = append(heaps, sp.graveyard...)
	sp.graveyard = nil
	sp.mu.Unlock()
	for _, h := range heaps {
		h.f.Close() //nolint:errcheck // scratch files; nothing to preserve
	}
}
