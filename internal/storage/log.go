package storage

import (
	"sync/atomic"

	"repro/internal/value"
)

// LogOp enumerates logged mutation kinds.
type LogOp string

// Log operations. Inserts are logged with their assigned RowID so replay
// reproduces identical ids (replay uses RestoreAt semantics).
const (
	OpCreateTable        LogOp = "create"
	OpDropTable          LogOp = "drop"
	OpCreateIndex        LogOp = "index"
	OpCreateOrderedIndex LogOp = "oindex"
	OpInsert             LogOp = "insert"
	OpDelete             LogOp = "delete"
	OpUpdate             LogOp = "update"
	OpRestore            LogOp = "restore"
	// OpCommit marks a transaction's commit point and carries its commit
	// timestamp, so recovery advances the commit clock past every timestamp
	// ever handed out and post-recovery snapshots order correctly.
	OpCommit LogOp = "commit"
)

// LogRecord describes one durable mutation. The write-ahead log appends
// these; recovery replays them in order. Rolled-back transactions appear as
// their original operations followed by compensating ones (undo is executed
// through the same mutation paths), so replaying the full sequence
// reconstructs exactly the post-crash logical state.
type LogRecord struct {
	Op     LogOp
	Table  string
	Schema *value.Schema // OpCreateTable
	PK     []string      // OpCreateTable
	Cols   []string      // OpCreateIndex/OpCreateOrderedIndex
	Index  string        // OpCreateIndex/OpCreateOrderedIndex: user-assigned name, "" when unnamed
	RowID  RowID         // row ops
	Row    value.Tuple   // OpInsert/OpUpdate/OpRestore
	TS     uint64        // OpCommit: the transaction's commit timestamp
	// Txn groups the records of one writing transaction: row ops carry the
	// writer's id and the transaction's OpCommit repeats it, so a consumer
	// replaying the log concurrently with readers (a replication follower)
	// can publish each transaction's rows atomically at its commit record.
	// Zero means auto-commit: the record is its own atomic unit.
	Txn uint64
}

// LogFunc receives every mutation after it is applied, while the table lock
// is still held — records are therefore appended in exactly the order the
// mutations took effect.
type LogFunc func(LogRecord)

// logState is shared between a catalog and its tables.
type logState struct {
	fn atomic.Pointer[LogFunc]
}

func (ls *logState) emit(r LogRecord) {
	if ls == nil {
		return
	}
	if fn := ls.fn.Load(); fn != nil {
		(*fn)(r)
	}
}

// SetLog installs fn as the mutation logger for the catalog and every table
// in it (current and future). Pass nil to detach.
func (c *Catalog) SetLog(fn LogFunc) {
	if fn == nil {
		c.log.fn.Store(nil)
		return
	}
	c.log.fn.Store(&fn)
}
