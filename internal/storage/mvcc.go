package storage

import (
	"errors"
	"sync/atomic"

	"repro/internal/value"
)

// This file holds the MVCC core: versioned tuples, point-in-time snapshots,
// and the transaction writer handle.
//
// Every row is a chain of immutable versions, newest first, each stamped
// with a [begin, end) lifetime in commit timestamps drawn from the
// catalog-wide commit clock. Readers resolve a chain against a Snapshot
// without taking any transaction-level lock: a version is visible when it
// was created at or before the snapshot and not yet deleted at it. Writers
// record in-flight versions against a Writer; commit publishes one atomic
// timestamp store that makes every version of the transaction visible at
// once, across all touched tables.
//
// Cross-transaction write conflicts use first-committer-wins: a writer that
// finds the newest committed version of a row younger than its own snapshot
// aborts with ErrWriteConflict instead of blindly overwriting (the lost
// update it would otherwise cause is the anomaly snapshot isolation
// forbids). Write-write blocking between in-flight transactions is handled
// above this layer by the txn package's exclusive table locks.

// ErrWriteConflict is returned when a write finds the row changed by a
// transaction that committed after the writer's snapshot was taken
// (first-committer-wins). The caller should abort and retry.
var ErrWriteConflict = errors.New("storage: write-write conflict (first committer wins)")

// liveTS marks a version that has not been deleted or superseded.
const liveTS = ^uint64(0)

// latestTS is the snapshot timestamp that observes every committed version.
// It is one below liveTS so `end > ts` stays true for live versions.
const latestTS = liveTS - 1

// version is one entry in a row's chain. begin/end are valid once the
// corresponding writer pointer is nil; while a writer is in flight, readers
// consult its atomically published state instead. Fields are written only
// under the owning table's mutex, so readers holding it (even shared) see
// consistent values.
type version struct {
	// tup is the tuple, or nil when the version is spilled to the table's
	// heap file and ref locates its bytes instead. Spillable tables page out
	// the version at creation; a write that needs the old tuple materializes
	// it back (update/delete — "the chain is reconstructed on write"). tup
	// only ever transitions nil→non-nil, under the table's exclusive latch.
	tup value.Tuple
	// ref locates the spilled record (page.go). Written at version creation
	// and rewritten only by the page compactor, both under the table's
	// exclusive latch. Readers copy it under the shared latch and may resolve
	// it after releasing, provided they entered the heap's readers gate first
	// — the gate keeps a captured ref's page from being reclaimed and reused
	// until the decode finishes (see heap.go).
	ref   pageRef
	begin uint64   // commit ts of the creating txn
	end   uint64   // commit ts of the deleting/superseding txn; liveTS while current
	bw    *Writer  // in-flight creator, nil once finalized
	ew    *Writer  // in-flight deleter/superseder, nil once finalized
	prev  *version // next-older version
}

// Snapshot is a point-in-time read view: every transaction that committed at
// or before TS is visible, nothing else — except the owning writer's own
// in-flight changes, which are always visible to it.
type Snapshot struct {
	ts uint64
	w  *Writer
}

// TS returns the snapshot's commit-clock timestamp.
func (s Snapshot) TS() uint64 { return s.ts }

// Latest returns the snapshot that sees every committed version and no
// in-flight one — the view non-transactional readers get.
func Latest() Snapshot { return Snapshot{ts: latestTS} }

// SnapshotAt builds a snapshot at ts owned by w (nil for pure readers). The
// txn layer uses it to attach its writer to the transaction's pinned
// snapshot so reads observe the transaction's own uncommitted writes.
func SnapshotAt(ts uint64, w *Writer) Snapshot { return Snapshot{ts: ts, w: w} }

// visible reports whether v is in s's view. Caller holds the owning table's
// mutex (shared suffices).
func (v *version) visible(s Snapshot) bool {
	if bw := v.bw; bw != nil {
		if bw != s.w {
			ts := bw.state.Load()
			if ts == 0 || ts > s.ts {
				return false
			}
		}
	} else if v.begin > s.ts {
		return false
	}
	if ew := v.ew; ew != nil {
		if ew == s.w {
			return false // deleted by the snapshot's own transaction
		}
		ts := ew.state.Load()
		return ts == 0 || ts > s.ts // someone else's in-flight delete is ignored
	}
	return v.end > s.ts
}

// visibleVersion resolves a chain against a snapshot: the newest version
// visible at s, or nil when the row does not exist in that view.
func visibleVersion(h *version, s Snapshot) *version {
	for v := h; v != nil; v = v.prev {
		if v.visible(s) {
			return v
		}
	}
	return nil
}

// Writer is the storage-side handle of one writing transaction. Versions it
// creates or ends point back at it until commit; state holds 0 while in
// flight and the commit timestamp afterwards, so publishing one atomic store
// commits every touched row at once. A Writer is single-goroutine, like the
// Txn that owns it.
//
// There is no abort path at this level: the txn layer rolls back by applying
// its undo trail through the same writer and then committing, which leaves
// the aborted intermediate versions with begin == end — invisible to every
// snapshot — and keeps the write-ahead log's physical-redo story (forward
// operations followed by compensating ones) intact.
type Writer struct {
	cat   *Catalog
	id    uint64        // Txn tag on this writer's log records
	state atomic.Uint64 // 0 in flight; commit ts once published
	snap  uint64        // owning txn's snapshot, for first-committer-wins checks
	vers  []wver
}

type wver struct {
	t *Table
	v *version
}

// NewWriter returns a writer drawing commit timestamps from the catalog's
// clock.
func (c *Catalog) NewWriter() *Writer { return &Writer{cat: c, id: c.writerSeq.Add(1)} }

// NewTaggedWriter returns a writer whose log records carry the given Txn tag
// instead of a locally drawn one. The replication applier preserves the
// original primary's tags this way, so the commit records a promoted follower
// emits into its own log demultiplex correctly on any downstream follower.
func (c *Catalog) NewTaggedWriter(id uint64) *Writer { return &Writer{cat: c, id: id} }

// txnID is the LogRecord.Txn tag for a mutation made on behalf of w (zero for
// auto-commit mutations, which are their own atomic unit).
func txnID(w *Writer) uint64 {
	if w == nil {
		return 0
	}
	return w.id
}

// SetSnapshot records the owning transaction's snapshot timestamp; writes
// compare committed row timestamps against it to detect conflicts.
func (w *Writer) SetSnapshot(ts uint64) { w.snap = ts }

func (w *Writer) touch(t *Table, v *version) { w.vers = append(w.vers, wver{t, v}) }

// Commit publishes the writer's versions at a fresh commit timestamp and
// returns it. The state store is the atomic commit point; the per-table pass
// afterwards only finalizes begin/end stamps (and bumps table versions) so
// later readers stop chasing writer state.
func (w *Writer) Commit() uint64 {
	ts := w.cat.publishCommit(w)
	for i := 0; i < len(w.vers); {
		t := w.vers[i].t
		t.mu.Lock()
		j := i
		for ; j < len(w.vers) && w.vers[j].t == t; j++ {
			v := w.vers[j].v
			if v.bw == w {
				v.begin = ts
				v.bw = nil
			}
			if v.ew == w {
				v.end = ts
				v.ew = nil
			}
		}
		t.version++
		t.mu.Unlock()
		i = j
	}
	if len(w.vers) > 0 {
		w.cat.log.emit(LogRecord{Op: OpCommit, TS: ts, Txn: w.id})
	}
	return ts
}

// SnapRef is an intrusive registration of one active snapshot; pinning links
// it into the catalog's active list so garbage collection never reclaims
// versions the snapshot can still see. Embed it (in a Txn, a pooled scratch)
// to pin without allocating.
type SnapRef struct {
	ts         uint64
	prev, next *SnapRef
}
