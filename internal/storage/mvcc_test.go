package storage

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/value"
)

func mvccTable(t *testing.T) (*Catalog, *Table) {
	t.Helper()
	cat := NewCatalog()
	schema := value.NewSchema(value.Col("id", value.TypeInt), value.Col("s", value.TypeString))
	tbl, err := cat.Create("T", schema, "id")
	if err != nil {
		t.Fatal(err)
	}
	return cat, tbl
}

// TestVersionChainVisibility: a snapshot pinned before a writer commits keeps
// seeing the old version; a snapshot pinned after sees the new one.
func TestVersionChainVisibility(t *testing.T) {
	cat, tbl := mvccTable(t)
	id, err := tbl.Insert(value.NewTuple(1, "old"))
	if err != nil {
		t.Fatal(err)
	}

	var before SnapRef
	old := SnapshotAt(cat.PinSnapshot(&before), nil)
	defer cat.UnpinSnapshot(&before)

	w := cat.NewWriter()
	w.SetSnapshot(old.TS())
	if _, err := tbl.UpdateW(w, id, value.NewTuple(1, "new")); err != nil {
		t.Fatal(err)
	}

	// Uncommitted: invisible to everyone but the writer itself.
	if row, err := tbl.GetAt(old, id); err != nil || row[1].Str() != "old" {
		t.Fatalf("pre-commit old snapshot: %v %v, want old", row, err)
	}
	if row, err := tbl.Get(id); err != nil || row[1].Str() != "old" {
		t.Fatalf("pre-commit Latest: %v %v, want old", row, err)
	}
	if row, err := tbl.GetAt(SnapshotAt(old.TS(), w), id); err != nil || row[1].Str() != "new" {
		t.Fatalf("writer's own read: %v %v, want new", row, err)
	}

	ts := w.Commit()
	if ts == 0 || ts <= old.TS() {
		t.Fatalf("commit ts %d not after snapshot %d", ts, old.TS())
	}
	if row, err := tbl.GetAt(old, id); err != nil || row[1].Str() != "old" {
		t.Fatalf("post-commit old snapshot: %v %v, want old (repeatable)", row, err)
	}
	if row, err := tbl.GetAt(SnapshotAt(cat.Clock(), nil), id); err != nil || row[1].Str() != "new" {
		t.Fatalf("post-commit fresh snapshot: %v %v, want new", row, err)
	}
}

// TestFirstCommitterWinsStorage: two writers race for one row; the second to
// touch it gets ErrWriteConflict and the conflict counter moves.
func TestFirstCommitterWinsStorage(t *testing.T) {
	cat, tbl := mvccTable(t)
	id, _ := tbl.Insert(value.NewTuple(1, "base"))

	snap := cat.Clock()
	w1 := cat.NewWriter()
	w1.SetSnapshot(snap)
	w2 := cat.NewWriter()
	w2.SetSnapshot(snap)

	if _, err := tbl.UpdateW(w1, id, value.NewTuple(1, "w1")); err != nil {
		t.Fatal(err)
	}
	// w1 uncommitted: w2 must not wait, it must abort immediately.
	if _, err := tbl.UpdateW(w2, id, value.NewTuple(1, "w2")); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("conflicting update got %v, want ErrWriteConflict", err)
	}
	w1.Commit()
	// w1 committed past w2's snapshot: still a conflict.
	if _, err := tbl.UpdateW(w2, id, value.NewTuple(1, "w2")); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("post-commit conflicting update got %v, want ErrWriteConflict", err)
	}
	if got := cat.Conflicts(); got != 2 {
		t.Fatalf("catalog conflicts = %d, want 2", got)
	}
	if row, _ := tbl.Get(id); row[1].Str() != "w1" {
		t.Fatalf("row = %v, want the first committer's write", row)
	}
}

// TestGCWatermark: versions below the oldest pinned snapshot survive GC;
// once the pin is released they are reclaimed and the stats move.
func TestGCWatermark(t *testing.T) {
	cat, tbl := mvccTable(t)
	id, _ := tbl.Insert(value.NewTuple(1, "v0"))

	var pin SnapRef
	old := SnapshotAt(cat.PinSnapshot(&pin), nil)

	for i, s := range []string{"v1", "v2", "v3"} {
		w := cat.NewWriter()
		w.SetSnapshot(cat.Clock())
		if _, err := tbl.UpdateW(w, id, value.NewTuple(1, s)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		w.Commit()
	}
	if _, versions := tbl.VersionStats(); versions != 4 {
		t.Fatalf("versions = %d, want 4 before GC", versions)
	}

	// The pinned snapshot holds the watermark down: v0 must survive.
	cat.GC()
	if row, err := tbl.GetAt(old, id); err != nil || row[1].Str() != "v0" {
		t.Fatalf("pinned snapshot after GC: %v %v, want v0", row, err)
	}

	cat.UnpinSnapshot(&pin)
	reclaimed := cat.GC()
	if reclaimed == 0 {
		t.Fatal("GC reclaimed nothing after the pin was released")
	}
	if _, versions := tbl.VersionStats(); versions != 1 {
		t.Fatalf("versions = %d, want 1 after GC", versions)
	}
	if got := cat.GCReclaimed(); got != uint64(reclaimed) {
		t.Fatalf("GCReclaimed = %d, want %d", got, reclaimed)
	}
	if row, _ := tbl.Get(id); row[1].Str() != "v3" {
		t.Fatalf("surviving version %v, want v3", row)
	}
}

// TestGCDeletedChain: a deleted row's whole chain disappears once no snapshot
// can see it, and its index keys are dropped with it.
func TestGCDeletedChain(t *testing.T) {
	cat, tbl := mvccTable(t)
	if err := tbl.CreateIndex("s"); err != nil {
		t.Fatal(err)
	}
	id, _ := tbl.Insert(value.NewTuple(1, "gone"))
	if _, err := tbl.Delete(id); err != nil {
		t.Fatal(err)
	}

	cat.GC()
	if chains, versions := tbl.VersionStats(); chains != 0 || versions != 0 {
		t.Fatalf("chains=%d versions=%d after GC of a deleted row, want 0/0", chains, versions)
	}
	if ids := tbl.LookupEq([]int{1}, value.NewTuple("gone")); len(ids) != 0 {
		t.Fatalf("index still returns %v for a reclaimed chain", ids)
	}
	// The primary key is free again.
	if _, err := tbl.Insert(value.NewTuple(1, "back")); err != nil {
		t.Fatalf("re-insert after GC: %v", err)
	}
}

// TestScanCompletesWhileWriterCommitsMidScan: a snapshot scan parked mid-row
// finishes — and sees only its snapshot — while a writer commits an update
// and an insert underneath it. Run under -race this also proves the reader
// path is synchronization-free against commits.
func TestScanCompletesWhileWriterCommitsMidScan(t *testing.T) {
	cat, tbl := mvccTable(t)
	var ids []RowID
	for i := 0; i < 4; i++ {
		id, err := tbl.Insert(value.NewTuple(i, "pre"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	var pin SnapRef
	snap := SnapshotAt(cat.PinSnapshot(&pin), nil)
	defer cat.UnpinSnapshot(&pin)

	parked := make(chan struct{})
	committed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-parked
		w := cat.NewWriter()
		w.SetSnapshot(cat.Clock())
		if _, err := tbl.UpdateW(w, ids[2], value.NewTuple(2, "post")); err != nil {
			t.Error(err)
		}
		if _, err := tbl.InsertW(w, value.NewTuple(99, "post")); err != nil {
			t.Error(err)
		}
		w.Commit()
		close(committed)
	}()

	n := 0
	tbl.ScanAt(snap, func(_ RowID, row value.Tuple) bool {
		if n == 0 {
			close(parked)
			<-committed // the write commits while the scan is mid-flight
		}
		if row[1].Str() != "pre" {
			t.Errorf("scan saw post-snapshot write %v", row)
		}
		n++
		return true
	})
	wg.Wait()
	if n != 4 {
		t.Fatalf("scan visited %d rows, want the 4 in its snapshot", n)
	}
}
