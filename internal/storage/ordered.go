package storage

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// orderedIndex keeps row ids sorted by one column's value, enabling range
// lookups (BETWEEN, <, >) without a full scan. Entries are kept in a sorted
// slice; insertion is O(n) worst case, which is the right trade-off for the
// read-heavy generator subqueries of the coordination workload.
//
// Like the hash indexes, the ordered index covers every stored version of a
// row: an entry means "some version of this row has this value", entries are
// added when such a version appears and removed only when GC prunes the last
// version carrying the value. Probes re-resolve each candidate against the
// read snapshot and verify the visible version's value. All access runs
// under the owning table's mutex.
type orderedIndex struct {
	col     int
	name    string         // user-assigned index name, "" when unnamed
	entries []orderedEntry // sorted by (value, id), unique
	// distinct counts the groups of equal values currently in entries
	// (NULLs form one group). Maintained incrementally by add/remove with a
	// neighbor check, so the planner snapshots it in O(1).
	distinct int
}

type orderedEntry struct {
	v  value.Value
	id RowID
}

func (ix *orderedIndex) less(a orderedEntry, b orderedEntry) bool {
	if c := a.v.Compare(b.v); c != 0 {
		return c < 0
	}
	return a.id < b.id
}

// locate returns the position of the first entry ≥ e.
func (ix *orderedIndex) locate(e orderedEntry) int {
	return sort.Search(len(ix.entries), func(i int) bool {
		return !ix.less(ix.entries[i], e)
	})
}

// add records (value, id) if absent; idempotent across versions sharing the
// value. Caller holds t.mu.
func (ix *orderedIndex) add(id RowID, row value.Tuple) {
	e := orderedEntry{v: row[ix.col], id: id}
	pos := ix.locate(e)
	if pos < len(ix.entries) && ix.entries[pos].id == e.id && ix.entries[pos].v.Compare(e.v) == 0 {
		return
	}
	dup := (pos > 0 && ix.entries[pos-1].v.Compare(e.v) == 0) ||
		(pos < len(ix.entries) && ix.entries[pos].v.Compare(e.v) == 0)
	ix.entries = append(ix.entries, orderedEntry{})
	copy(ix.entries[pos+1:], ix.entries[pos:])
	ix.entries[pos] = e
	if !dup {
		ix.distinct++
	}
}

// remove drops (value, id); GC calls it once no version of the row carries
// the value anymore. Caller holds t.mu.
func (ix *orderedIndex) remove(id RowID, row value.Tuple) {
	e := orderedEntry{v: row[ix.col], id: id}
	pos := ix.locate(e)
	if pos < len(ix.entries) && ix.entries[pos].id == id && ix.entries[pos].v.Compare(e.v) == 0 {
		dup := (pos > 0 && ix.entries[pos-1].v.Compare(e.v) == 0) ||
			(pos+1 < len(ix.entries) && ix.entries[pos+1].v.Compare(e.v) == 0)
		ix.entries = append(ix.entries[:pos], ix.entries[pos+1:]...)
		if !dup {
			ix.distinct--
		}
	}
}

// Bound is one end of a range lookup.
type Bound struct {
	Value     value.Value
	Inclusive bool
	Set       bool // false = unbounded
}

// BoundAt returns an inclusive/exclusive bound at v.
func BoundAt(v value.Value, inclusive bool) Bound {
	return Bound{Value: v, Inclusive: inclusive, Set: true}
}

// scanAt appends ids with lo ≤(≤) visible value ≤(≤) hi in (value, id)
// order, verifying each candidate against the snapshot: the entry counts
// only when the version of the row visible at s actually carries the entry's
// value (an id appears at most once — its visible version has one value).
// NULLs never satisfy a range predicate, matching the engine's comparison
// semantics. Caller holds t.mu.
func (ix *orderedIndex) scanAt(t *Table, s Snapshot, lo, hi Bound) []RowID {
	start := 0
	if lo.Set {
		start = sort.Search(len(ix.entries), func(i int) bool {
			c := ix.entries[i].v.Compare(lo.Value)
			if lo.Inclusive {
				return c >= 0
			}
			return c > 0
		})
	}
	var out []RowID
	for i := start; i < len(ix.entries); i++ {
		e := ix.entries[i]
		if e.v.IsNull() {
			continue // NULL never satisfies a range predicate
		}
		if hi.Set {
			c := e.v.Compare(hi.Value)
			if c > 0 || (c == 0 && !hi.Inclusive) {
				break
			}
		}
		if v := visibleVersion(t.rows[e.id], s); v != nil && t.tupleOf(v)[ix.col].Compare(e.v) == 0 {
			out = append(out, e.id)
		}
	}
	return out
}

// CreateOrderedIndex builds (or reuses) an unnamed ordered index on one
// column.
func (t *Table) CreateOrderedIndex(col string) error {
	return t.CreateOrderedIndexNamed("", col)
}

// CreateOrderedIndexNamed builds (or reuses) an ordered index on one column
// under a user-assigned name. An existing index on the column is reused;
// a previously unnamed one adopts the name so WAL replay converges on the
// final name.
func (t *Table) CreateOrderedIndexNamed(name, col string) error {
	o := t.schema.Ordinal(col)
	if o < 0 {
		return fmt.Errorf("storage: table %s: unknown index column %q", t.name, col)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, ok := t.ordered[o]; ok {
		if name != "" && ix.name == "" {
			ix.name = name
			t.log.emit(LogRecord{Op: OpCreateOrderedIndex, Table: t.name, Cols: []string{col}, Index: name})
		}
		return nil
	}
	ix := &orderedIndex{col: o, name: name}
	if t.ordered == nil {
		t.ordered = make(map[int]*orderedIndex)
	}
	t.ordered[o] = ix
	for id, h := range t.rows {
		for v := h; v != nil; v = v.prev {
			ix.add(id, t.tupleOf(v)) // cover every version so old snapshots probe correctly
		}
	}
	t.log.emit(LogRecord{Op: OpCreateOrderedIndex, Table: t.name, Cols: []string{col}, Index: name})
	return nil
}

// HasOrderedIndex reports whether an ordered index exists on the column
// offset.
func (t *Table) HasOrderedIndex(col int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.ordered[col]
	return ok
}

// OrderedIndexes returns the column names carrying ordered indexes, sorted.
func (t *Table) OrderedIndexes() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var offs []int
	for o := range t.ordered {
		offs = append(offs, o)
	}
	sort.Ints(offs)
	names := make([]string, len(offs))
	for i, o := range offs {
		names[i] = t.schema.Columns[o].Name
	}
	return names
}

// LookupRange returns ids of rows whose col value lies within [lo, hi] in
// the latest committed state.
func (t *Table) LookupRange(col int, lo, hi Bound) []RowID {
	return t.LookupRangeAt(Latest(), col, lo, hi)
}

// LookupRangeAt is the snapshot-visible range probe, using the ordered index
// when present and a scan otherwise. Results are in (value, id) order with
// the index, RowID order without (bounds optional either way).
func (t *Table) LookupRangeAt(s Snapshot, col int, lo, hi Bound) []RowID {
	t.mu.RLock()
	ix, ok := t.ordered[col]
	if ok {
		out := ix.scanAt(t, s, lo, hi)
		t.mu.RUnlock()
		return out
	}
	t.mu.RUnlock()
	var out []RowID
	t.ScanAt(s, func(id RowID, row value.Tuple) bool {
		v := row[col]
		if v.IsNull() {
			return true
		}
		if lo.Set {
			c := v.Compare(lo.Value)
			if c < 0 || (c == 0 && !lo.Inclusive) {
				return true
			}
		}
		if hi.Set {
			c := v.Compare(hi.Value)
			if c > 0 || (c == 0 && !hi.Inclusive) {
				return true
			}
		}
		out = append(out, id)
		return true
	})
	return out
}
