package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func pricesTable(t *testing.T) *Table {
	t.Helper()
	schema := value.NewSchema(value.Col("fno", value.TypeInt), value.Col("price", value.TypeFloat))
	tbl, err := NewTable("Prices", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range []float64{420, 380, 450, 310, 390, 500} {
		if _, err := tbl.Insert(value.NewTuple(100+i, p)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func ids(t *testing.T, tbl *Table, lo, hi Bound) []RowID {
	t.Helper()
	return tbl.LookupRange(1, lo, hi)
}

func TestOrderedIndexRangeLookup(t *testing.T) {
	tbl := pricesTable(t)
	if err := tbl.CreateOrderedIndex("price"); err != nil {
		t.Fatal(err)
	}
	if !tbl.HasOrderedIndex(1) || tbl.HasOrderedIndex(0) {
		t.Error("HasOrderedIndex")
	}
	got := ids(t, tbl, BoundAt(value.NewFloat(380), true), BoundAt(value.NewFloat(450), true))
	if len(got) != 4 { // 380, 390, 420, 450
		t.Fatalf("range [380,450] = %v", got)
	}
	// Results come back in value order.
	prev := -1.0
	for _, id := range got {
		row, _ := tbl.Get(id)
		if row[1].Float() < prev {
			t.Errorf("out of order: %v", got)
		}
		prev = row[1].Float()
	}
	// Exclusive bounds.
	got = ids(t, tbl, BoundAt(value.NewFloat(380), false), BoundAt(value.NewFloat(450), false))
	if len(got) != 2 { // 390, 420
		t.Errorf("range (380,450) = %v", got)
	}
	// Unbounded ends.
	if got := ids(t, tbl, Bound{}, BoundAt(value.NewFloat(380), true)); len(got) != 2 {
		t.Errorf("(-inf,380] = %v", got)
	}
	if got := ids(t, tbl, BoundAt(value.NewFloat(450), true), Bound{}); len(got) != 2 {
		t.Errorf("[450,inf) = %v", got)
	}
	if got := ids(t, tbl, Bound{}, Bound{}); len(got) != 6 {
		t.Errorf("full range = %v", got)
	}
}

func TestOrderedIndexMaintained(t *testing.T) {
	tbl := pricesTable(t)
	tbl.CreateOrderedIndex("price") //nolint:errcheck
	id, _ := tbl.Insert(value.NewTuple(200, 415.0))
	if got := ids(t, tbl, BoundAt(value.NewFloat(410), true), BoundAt(value.NewFloat(425), true)); len(got) != 2 {
		t.Errorf("after insert: %v", got)
	}
	tbl.Update(id, value.NewTuple(200, 50.0)) //nolint:errcheck
	if got := ids(t, tbl, BoundAt(value.NewFloat(410), true), BoundAt(value.NewFloat(425), true)); len(got) != 1 {
		t.Errorf("after update: %v", got)
	}
	if got := ids(t, tbl, Bound{}, BoundAt(value.NewFloat(100), true)); len(got) != 1 {
		t.Errorf("relocated entry missing: %v", got)
	}
	tbl.Delete(id) //nolint:errcheck
	if got := ids(t, tbl, Bound{}, BoundAt(value.NewFloat(100), true)); len(got) != 0 {
		t.Errorf("after delete: %v", got)
	}
}

func TestOrderedIndexNullsExcluded(t *testing.T) {
	tbl := pricesTable(t)
	tbl.CreateOrderedIndex("price")      //nolint:errcheck
	tbl.Insert(value.NewTuple(300, nil)) //nolint:errcheck
	if got := ids(t, tbl, Bound{}, Bound{}); len(got) != 6 {
		t.Errorf("NULL leaked into range scan: %v", got)
	}
}

func TestOrderedIndexErrors(t *testing.T) {
	tbl := pricesTable(t)
	if err := tbl.CreateOrderedIndex("nosuch"); err == nil {
		t.Error("unknown column accepted")
	}
	if err := tbl.CreateOrderedIndex("price"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateOrderedIndex("price"); err != nil {
		t.Error("idempotent create failed")
	}
	if got := tbl.OrderedIndexes(); len(got) != 1 || got[0] != "price" {
		t.Errorf("OrderedIndexes = %v", got)
	}
}

// Property: indexed range lookup ≡ scan-based range lookup, for random data
// and random inclusive bounds.
func TestLookupRangeIndexScanEquivalence(t *testing.T) {
	f := func(vals []int16, loRaw, hiRaw int16) bool {
		schema := value.NewSchema(value.Col("x", value.TypeInt))
		plain, _ := NewTable("p", schema)
		indexed, _ := NewTable("q", schema)
		indexed.CreateOrderedIndex("x") //nolint:errcheck
		for _, v := range vals {
			plain.Insert(value.NewTuple(int(v)))   //nolint:errcheck
			indexed.Insert(value.NewTuple(int(v))) //nolint:errcheck
		}
		lo, hi := int64(loRaw), int64(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		a := plain.LookupRange(0, BoundAt(value.NewInt(lo), true), BoundAt(value.NewInt(hi), true))
		b := indexed.LookupRange(0, BoundAt(value.NewInt(lo), true), BoundAt(value.NewInt(hi), true))
		if len(a) != len(b) {
			return false
		}
		// Same id sets (order differs: scan is id-order, index value-order).
		seen := make(map[RowID]bool, len(a))
		for _, id := range a {
			seen[id] = true
		}
		for _, id := range b {
			if !seen[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOrderedIndexLargeInsertionStaysSorted(t *testing.T) {
	schema := value.NewSchema(value.Col("x", value.TypeInt))
	tbl, _ := NewTable("big", schema)
	tbl.CreateOrderedIndex("x") //nolint:errcheck
	for i := 0; i < 500; i++ {
		tbl.Insert(value.NewTuple((i * 7919) % 1000)) //nolint:errcheck
	}
	got := tbl.LookupRange(0, Bound{}, Bound{})
	if len(got) != 500 {
		t.Fatalf("len = %d", len(got))
	}
	prev := int64(-1)
	for _, id := range got {
		row, _ := tbl.Get(id)
		if row[0].Int() < prev {
			t.Fatal("index order violated")
		}
		prev = row[0].Int()
	}
}
