package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/value"
)

// Paged tuple storage: the on-disk page format behind spillable tables.
//
// A heap file (heap.go) is a sequence of fixed-size 8 KiB pages. Each page
// is an 8-byte header followed by records appended in arrival order:
//
//	header:  used (uint16 LE) | count (uint16 LE) | 4 reserved bytes
//	record:  row id (uvarint) | payload length (uvarint) | tuple payload
//
// `used` is the byte offset one past the last record (headerLen on an empty
// page) and `count` the number of records — both are bookkeeping for
// debugging and offline inspection; readers navigate by pageRef, which
// carries the record's exact offset and length, so a record is decoded
// without touching the header or its neighbours. The tuple payload is the
// shared codec of codec.go — the same bytes the WAL writes for the row.
//
// Records never span pages and pages are immutable once sealed (full), which
// is what lets buffer-pool readers decode a pinned page without any
// page-level lock: the only mutable page of a heap is its in-memory tail,
// and appends there only ever touch bytes past every previously handed-out
// reference.

const (
	// PageSize is the fixed size of a heap page and of every buffer-pool
	// frame.
	PageSize = 8 << 10

	pageHeaderLen = 8

	// maxRecordLen is the largest record a page can hold. Tuples that encode
	// larger than this stay fully in memory (newVersion falls back), so the
	// page format never needs overflow chains.
	maxRecordLen = PageSize - pageHeaderLen
)

// ErrTupleTooLarge reports a tuple whose encoded record exceeds a page's
// capacity; spillable tables keep such tuples resident instead.
var ErrTupleTooLarge = errors.New("storage: tuple exceeds page capacity")

// pageRef locates one record inside a table's heap file: the page number,
// the record's byte offset within the page, and its total length. The zero
// ref (n == 0) means "not spilled". Refs are written once when the version
// is created and never change — heaps are append-only — so readers may copy
// a ref under the table's shared latch and resolve it after releasing it.
type pageRef struct {
	page uint32
	off  uint16
	n    uint16
}

func (r pageRef) isSet() bool { return r.n != 0 }

func pageUsed(buf []byte) int       { return int(binary.LittleEndian.Uint16(buf)) }
func setPageUsed(buf []byte, n int) { binary.LittleEndian.PutUint16(buf, uint16(n)) }

func pageCount(buf []byte) int       { return int(binary.LittleEndian.Uint16(buf[2:])) }
func setPageCount(buf []byte, n int) { binary.LittleEndian.PutUint16(buf[2:], uint16(n)) }

// appendHeapRecord encodes one record (row id, length prefix, tuple payload)
// onto dst. payload is a scratch buffer holding the already-encoded tuple
// (AppendTuple), so the length prefix is known before the record is laid out.
func appendHeapRecord(dst []byte, id RowID, payload []byte) []byte {
	dst = AppendUvarint(dst, uint64(id))
	dst = AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// decodeHeapRecord decodes a record written by appendHeapRecord.
func decodeHeapRecord(b []byte) (RowID, value.Tuple, error) {
	id, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("storage: bad row id in heap record")
	}
	off := n
	payload, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, nil, fmt.Errorf("storage: bad payload length in heap record")
	}
	off += n
	if payload > uint64(len(b)-off) {
		return 0, nil, fmt.Errorf("storage: heap record payload %d exceeds record bounds", payload)
	}
	tup, _, err := DecodeTuple(b[off : off+int(payload)])
	if err != nil {
		return 0, nil, err
	}
	return RowID(id), tup, nil
}
