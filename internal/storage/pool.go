package storage

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Pool is the fixed-capacity buffer pool shared by every spillable table of
// a catalog. It caches heap pages in a fixed set of PageSize frames with
// pin/unpin reference counts and CLOCK second-chance eviction, partitioned
// into shards so concurrent fetches contend only within their shard.
//
// Sharding: a page's (heap, page-number) tag hashes to one shard, each with
// its own mutex, frame set, page→frame map, and CLOCK hand. A fetch touches
// exactly one shard mutex, so misses on different shards — and all hits —
// proceed in parallel.
//
// Per-frame I/O latches: a miss claims a victim frame, installs it in the
// map as "loading", RELEASES the shard mutex, performs the disk read outside
// any lock, then publishes the result through the frame's load latch.
// Concurrent fetchers of the same page find the loading frame, pin it (so it
// cannot be evicted from under them), and wait on the latch — exactly one
// disk read per page, however many fetchers race for it (singleflight).
// Fetches of other pages on the same shard only overlap with the map
// bookkeeping, never with the read itself. Dirty-victim writeback still
// happens under the shard mutex: eviction is rare after a checkpoint flush,
// and keeping it locked makes the claim/revert protocol trivial.
//
// Page BYTES need no lock of their own: a frame's contents are written only
// while the frame is claimed (loading, or adopt under the shard mutex), and
// once published a page is a sealed — immutable — heap page, so any number
// of pinned readers may decode it concurrently while every mutex is free.
//
// ErrPoolExhausted is the typed no-deadlock guarantee: when every frame of
// the target shard is pinned, fetch fails immediately instead of waiting for
// an unpin that the caller itself might owe. (With sharding the guarantee is
// per shard; callers degrade to unbuffered I/O exactly as before.)

// ErrPoolExhausted is returned by a page fetch that found every frame of the
// page's shard pinned. Callers either surface it or fall back to an
// unbuffered read (heapFile.load does the latter, so table reads degrade
// instead of failing).
var ErrPoolExhausted = errors.New("storage: buffer pool exhausted (all frames pinned)")

// pageTag identifies a cached page: which heap, which page number.
type pageTag struct {
	h  *heapFile
	no uint32
}

// loadLatch publishes the outcome of one in-flight disk read. Waiters block
// on done; err is valid once done is closed (the close gives the usual
// happens-before edge, so waiters also see the frame bytes the loader wrote).
type loadLatch struct {
	done chan struct{}
	err  error
}

type frame struct {
	shard  *poolShard
	tag    pageTag
	buf    []byte
	pins   int  // readers currently holding the frame; >0 blocks eviction
	refbit bool // CLOCK second-chance bit, set on unpin
	dirty  bool // contents newer than disk; written back on evict/flush
	inUse  bool

	// loading marks a frame whose disk read is in flight: it is mapped (so
	// later fetchers of the page find it) but its bytes are not yet valid.
	// The loader holds one pin for the duration, so a loading frame is never
	// a CLOCK victim. latch is non-nil exactly while loading.
	loading bool
	latch   *loadLatch

	// dead marks a frame whose page was invalidated (heap dropped, page
	// reclaimed, or load failed) while still pinned: the mapping is gone,
	// the frame must NEVER be written back, and the last unpin frees it.
	// Pinned readers of a dropped heap keep decoding the (still valid,
	// immutable) bytes until then.
	dead bool
}

type poolShard struct {
	mu     sync.Mutex
	frames []frame
	idx    map[pageTag]int
	hand   int // CLOCK hand

	hits, misses, evictions, writebacks, loadWaits uint64
}

// Pool implements the sharded buffer pool. The zero value is not usable;
// NewPool or NewPoolShards.
type Pool struct {
	shards []*poolShard
	pages  int
}

// defaultPoolShards picks the shard count for a pool of the given frame
// budget: enough shards to spread concurrent misses across cores, but at
// least 8 frames per shard so tiny pools keep meaningful CLOCK behaviour
// (a 2-frame test pool stays a single shard with the classic semantics).
func defaultPoolShards(pages int) int {
	n := runtime.GOMAXPROCS(0)
	if m := pages / 8; m < n {
		n = m
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NewPool returns a pool of the given number of PageSize frames (minimum 1)
// with an automatically chosen shard count.
func NewPool(pages int) *Pool { return NewPoolShards(pages, 0) }

// NewPoolShards returns a pool of the given number of PageSize frames split
// across the given number of shards. shards <= 0 selects the default
// (min(GOMAXPROCS, pages/8), at least 1); shards above the frame count are
// clamped so every shard owns at least one frame.
func NewPoolShards(pages, shards int) *Pool {
	if pages < 1 {
		pages = 1
	}
	if shards <= 0 {
		shards = defaultPoolShards(pages)
	}
	if shards > pages {
		shards = pages
	}
	p := &Pool{shards: make([]*poolShard, shards), pages: pages}
	for si := range p.shards {
		n := pages / shards
		if si < pages%shards {
			n++
		}
		s := &poolShard{frames: make([]frame, n), idx: make(map[pageTag]int, n)}
		for i := range s.frames {
			s.frames[i].shard = s
			s.frames[i].buf = make([]byte, PageSize)
		}
		p.shards[si] = s
	}
	return p
}

// shardOf maps a page tag to its shard: a multiplicative hash of the heap's
// id and the page number, so one hot table still spreads across shards.
func (p *Pool) shardOf(tag pageTag) *poolShard {
	x := tag.h.id*0x9e3779b97f4a7c15 + uint64(tag.no)*0xbf58476d1ce4e5b9
	x ^= x >> 29
	return p.shards[x%uint64(len(p.shards))]
}

// victimLocked runs the shard's CLOCK sweep: skip pinned frames (which
// includes every loading frame — the loader's pin protects it), give
// referenced frames a second chance, take the first unreferenced one (free
// frames win immediately). Two full sweeps without a victim means every
// frame is pinned. A dirty victim is written back before reuse. Caller
// holds s.mu.
func (s *poolShard) victimLocked() (int, error) {
	for spins := 0; spins < 2*len(s.frames); spins++ {
		i := s.hand
		s.hand = (s.hand + 1) % len(s.frames)
		f := &s.frames[i]
		if !f.inUse {
			return i, nil
		}
		if f.pins > 0 {
			continue
		}
		if f.refbit {
			f.refbit = false
			continue
		}
		if f.dirty {
			if err := f.tag.h.writePage(f.tag.no, f.buf); err != nil {
				return 0, fmt.Errorf("storage: buffer pool writeback of %s page %d: %w", f.tag.h.name, f.tag.no, err)
			}
			s.writebacks++
		}
		delete(s.idx, f.tag)
		f.inUse = false
		f.dirty = false
		s.evictions++
		return i, nil
	}
	return 0, ErrPoolExhausted
}

// freeLocked returns a frame to the unused state. The caller has already
// removed any map entry. Caller holds the frame's shard mutex.
func (s *poolShard) freeLocked(f *frame) {
	f.inUse = false
	f.dirty = false
	f.dead = false
	f.refbit = false
	f.loading = false
	f.latch = nil
}

// fetch returns a pinned frame holding the page, reading it from disk on a
// miss. The caller must unpin it when done decoding. Concurrent fetchers of
// the same absent page share one disk read (see the type comment).
func (p *Pool) fetch(h *heapFile, no uint32) (*frame, error) {
	tag := pageTag{h: h, no: no}
	s := p.shardOf(tag)
	s.mu.Lock()
	if i, ok := s.idx[tag]; ok {
		f := &s.frames[i]
		if !f.loading {
			s.hits++
			f.pins++
			s.mu.Unlock()
			return f, nil
		}
		// Another fetcher's read is in flight: pin the frame (blocks
		// eviction/recycling) and wait on its latch outside the mutex.
		s.loadWaits++
		f.pins++
		latch := f.latch
		s.mu.Unlock()
		<-latch.done
		if latch.err == nil {
			return f, nil // keep the pin taken above
		}
		s.mu.Lock()
		f.pins--
		if f.dead && f.pins == 0 {
			s.freeLocked(f)
		}
		s.mu.Unlock()
		return nil, latch.err
	}

	// Miss: claim a victim, publish it as loading, and read outside the lock.
	s.misses++
	i, err := s.victimLocked()
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	f := &s.frames[i]
	latch := &loadLatch{done: make(chan struct{})}
	f.tag = tag
	f.inUse = true
	f.loading = true
	f.latch = latch
	f.dead = false
	f.dirty = false
	f.refbit = false
	f.pins = 1 // the loader's own pin
	s.idx[tag] = i
	s.mu.Unlock()

	rerr := h.readPage(no, f.buf)

	s.mu.Lock()
	f.loading = false
	f.latch = nil
	if rerr != nil {
		rerr = fmt.Errorf("storage: buffer pool read of %s page %d: %w", h.name, no, rerr)
		if j, ok := s.idx[tag]; ok && j == i {
			delete(s.idx, tag)
		}
		f.pins--
		if f.pins == 0 {
			s.freeLocked(f)
		} else {
			f.dead = true // waiters still pin it; last unpin frees
		}
		latch.err = rerr
		s.mu.Unlock()
		close(latch.done)
		return nil, rerr
	}
	// The mapping may have been removed while we read (invalidate or
	// discardPage racing the load): the frame is then dead, but its bytes
	// are a valid copy of the page, so this fetch — and every waiter — still
	// succeeds; the last unpin frees the frame.
	s.mu.Unlock()
	close(latch.done)
	return f, nil
}

// unpin releases one pin taken by fetch. Dead frames are freed on their last
// unpin; live ones are marked recently used.
func (p *Pool) unpin(f *frame) {
	s := f.shard
	s.mu.Lock()
	f.pins--
	if f.dead {
		if f.pins == 0 {
			s.freeLocked(f)
		}
	} else {
		f.refbit = true
	}
	s.mu.Unlock()
}

// adopt installs a just-sealed tail page into the pool as a resident dirty
// frame, deferring its disk write to eviction or the next checkpoint flush.
// On ErrPoolExhausted the caller writes the page to disk directly instead.
// The copy happens under the shard mutex: sealing is rare (once per page of
// inserts) and the frame must not be observable half-filled.
func (p *Pool) adopt(h *heapFile, no uint32, data []byte) error {
	tag := pageTag{h: h, no: no}
	s := p.shardOf(tag)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.idx[tag]; ok {
		// A sealed page is adopted exactly once (reclaimed pages are
		// discarded from the pool before reuse); a duplicate means heap
		// bookkeeping broke.
		return fmt.Errorf("storage: page %d of %s already resident", no, h.name)
	}
	i, err := s.victimLocked()
	if err != nil {
		return err
	}
	f := &s.frames[i]
	copy(f.buf, data)
	f.tag = tag
	f.inUse = true
	f.pins = 0
	f.refbit = true
	f.dirty = true
	s.idx[tag] = i
	return nil
}

// discardPage drops any resident copy of one page without writeback — the
// reclamation hook: a freed heap page about to be reused by the tail
// allocator must not leave a stale frame behind. A pinned or loading frame
// (possible only in pathological races; the readers gate drains real
// readers first) is marked dead and freed on its last unpin.
func (p *Pool) discardPage(h *heapFile, no uint32) {
	tag := pageTag{h: h, no: no}
	s := p.shardOf(tag)
	s.mu.Lock()
	if i, ok := s.idx[tag]; ok {
		f := &s.frames[i]
		delete(s.idx, tag)
		f.dirty = false
		if f.pins == 0 && !f.loading {
			s.freeLocked(f)
		} else {
			f.dead = true
		}
	}
	s.mu.Unlock()
}

// FlushDirty writes every dirty frame back to its heap file — the
// checkpoint hook: after a flush, eviction is pure frame recycling until new
// writes dirty pages again. Pinned frames are flushed too (their bytes are
// immutable sealed pages; pins only protect residency). Loading and dead
// frames have nothing to flush.
func (p *Pool) FlushDirty() error {
	for _, s := range p.shards {
		s.mu.Lock()
		for i := range s.frames {
			f := &s.frames[i]
			if !f.inUse || !f.dirty || f.loading || f.dead {
				continue
			}
			if err := f.tag.h.writePage(f.tag.no, f.buf); err != nil {
				s.mu.Unlock()
				return fmt.Errorf("storage: checkpoint writeback of %s page %d: %w", f.tag.h.name, f.tag.no, err)
			}
			f.dirty = false
			s.writebacks++
		}
		s.mu.Unlock()
	}
	return nil
}

// invalidate drops every resident page of h without writeback (the heap is
// being dropped with its table). Pinned frames — a scan may be decoding one
// of the dropped table's pages right now — are unmapped and marked dead so
// the last unpin frees them; they are never written back into the retired
// heap file. A loading frame's read completes against the still-open
// descriptor and is likewise freed once its fetchers let go.
func (p *Pool) invalidate(h *heapFile) {
	for _, s := range p.shards {
		s.mu.Lock()
		for i := range s.frames {
			f := &s.frames[i]
			if !f.inUse || f.tag.h != h {
				continue
			}
			delete(s.idx, f.tag)
			f.dirty = false
			if f.pins == 0 && !f.loading {
				s.freeLocked(f)
			} else {
				f.dead = true
			}
		}
		s.mu.Unlock()
	}
}

// Stats returns the pool's cumulative counters and current occupancy,
// aggregated across shards, plus one PoolShardStats per shard.
func (p *Pool) Stats() (stats PoolStats) {
	stats.Capacity = p.pages
	stats.Shards = make([]PoolShardStats, len(p.shards))
	for si, s := range p.shards {
		s.mu.Lock()
		sh := PoolShardStats{Capacity: len(s.frames)}
		for i := range s.frames {
			if s.frames[i].inUse {
				sh.Resident++
				if s.frames[i].dirty {
					stats.Dirty++
				}
			}
		}
		sh.Hits, sh.Misses, sh.Evictions = s.hits, s.misses, s.evictions
		stats.Hits += s.hits
		stats.Misses += s.misses
		stats.Evictions += s.evictions
		stats.Writebacks += s.writebacks
		stats.LoadWaits += s.loadWaits
		stats.Resident += sh.Resident
		s.mu.Unlock()
		stats.Shards[si] = sh
	}
	return stats
}

// PoolStats is the buffer-pool snapshot surfaced on the admin interface and
// consumed by the larger-than-RAM benchmarks.
type PoolStats struct {
	Capacity int // frames configured (across all shards)
	Resident int // frames currently holding a page
	Dirty    int // resident frames awaiting writeback

	Hits      uint64 // fetches served from a resident frame
	Misses    uint64 // fetches that installed a frame and read from disk
	Evictions uint64 // frames recycled by CLOCK
	// Writebacks counts dirty pages written back (eviction + checkpoints).
	Writebacks uint64
	// LoadWaits counts fetches that arrived while another fetcher's disk
	// read of the same page was in flight and waited on its frame latch
	// instead of issuing a second read — the singleflight counter. These
	// count as neither hits nor misses.
	LoadWaits uint64

	SpilledTables int // tables paging through this pool
	PinnedTables  int // tables kept fully resident by policy
	// HeapPages counts pages currently holding data across all heap files
	// (sealed pages with records, plus each tail). Freed pages are excluded.
	HeapPages int
	// FreePages counts reclaimed heap pages waiting on free lists for the
	// tail allocators to reuse.
	FreePages int
	// ReclaimedPages counts pages ever returned to a free list — fully-dead
	// sealed pages swept by GC or rewritten by the page compactor.
	ReclaimedPages uint64
	// DeadSlots totals the heap records no version chain references anymore
	// that still occupy allocated pages. GC and the page compactor drive it
	// back down by freeing and rewriting mostly-dead pages.
	DeadSlots uint64

	// Shards holds one entry per pool shard, in shard order.
	Shards []PoolShardStats
	// Tables lists each spillable table's heap footprint, sorted by name.
	Tables []PoolTableInfo
}

// PoolShardStats is one shard's slice of the pool counters.
type PoolShardStats struct {
	Capacity  int // frames owned by this shard
	Resident  int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// PoolTableInfo is one spillable table's entry in PoolStats.
type PoolTableInfo struct {
	Name      string
	Pages     int    // heap pages currently holding data (sealed + tail)
	FreePages int    // reclaimed pages on the heap's free list
	DeadSlots uint64 // dead records still occupying the pages above
}

// HitRatio returns hits/(hits+misses), or 1 when the pool is untouched.
// Latch waits (LoadWaits) are in neither term: they did not read disk, but
// they did pay for someone else's read.
func (s PoolStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 1
	}
	return float64(s.Hits) / float64(total)
}
