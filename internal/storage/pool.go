package storage

import (
	"errors"
	"fmt"
	"sync"
)

// Pool is the fixed-capacity buffer pool shared by every spillable table of
// a catalog. It caches heap pages in a fixed set of PageSize frames with
// pin/unpin reference counts and CLOCK second-chance eviction.
//
// Locking: p.mu guards the frame table (the page→frame map, pin counts,
// reference bits, dirty flags) and every disk transfer. Page BYTES need no
// lock of their own: a frame's contents are written only while the frame is
// unreferenced (adopt/fetch fill it before it is mapped, eviction requires
// pins == 0), and once mapped a page is a sealed — immutable — heap page, so
// any number of pinned readers may decode it concurrently while p.mu is
// free. Doing disk I/O under p.mu serializes concurrent misses; that is the
// deliberate v1 trade (one mutex, no frame latches) and is called out in
// ARCHITECTURE.md.
//
// ErrPoolExhausted is the typed no-deadlock guarantee: when every frame is
// pinned, fetch fails immediately instead of waiting for an unpin that the
// caller itself might owe.

// ErrPoolExhausted is returned by a page fetch that found every frame
// pinned. Callers either surface it or fall back to an unbuffered read
// (heapFile.load does the latter, so table reads degrade instead of failing).
var ErrPoolExhausted = errors.New("storage: buffer pool exhausted (all frames pinned)")

// pageTag identifies a cached page: which heap, which page number.
type pageTag struct {
	h  *heapFile
	no uint32
}

type frame struct {
	tag    pageTag
	buf    []byte
	pins   int  // readers currently holding the frame; >0 blocks eviction
	refbit bool // CLOCK second-chance bit, set on unpin
	dirty  bool // contents newer than disk; written back on evict/flush
	inUse  bool
}

// Pool implements the buffer pool. The zero value is not usable; NewPool.
type Pool struct {
	mu     sync.Mutex
	frames []frame
	idx    map[pageTag]int
	hand   int // CLOCK hand

	hits, misses, evictions, writebacks uint64
}

// NewPool returns a pool of the given number of PageSize frames (minimum 1).
func NewPool(pages int) *Pool {
	if pages < 1 {
		pages = 1
	}
	p := &Pool{
		frames: make([]frame, pages),
		idx:    make(map[pageTag]int, pages),
	}
	for i := range p.frames {
		p.frames[i].buf = make([]byte, PageSize)
	}
	return p
}

// victimLocked runs the CLOCK sweep: skip pinned frames, give referenced
// frames a second chance, take the first unreferenced one (free frames win
// immediately). Two full sweeps without a victim means every frame is
// pinned. A dirty victim is written back before reuse. Caller holds p.mu.
func (p *Pool) victimLocked() (int, error) {
	for spins := 0; spins < 2*len(p.frames); spins++ {
		i := p.hand
		p.hand = (p.hand + 1) % len(p.frames)
		f := &p.frames[i]
		if !f.inUse {
			return i, nil
		}
		if f.pins > 0 {
			continue
		}
		if f.refbit {
			f.refbit = false
			continue
		}
		if f.dirty {
			if err := f.tag.h.writePage(f.tag.no, f.buf); err != nil {
				return 0, fmt.Errorf("storage: buffer pool writeback of %s page %d: %w", f.tag.h.name, f.tag.no, err)
			}
			p.writebacks++
		}
		delete(p.idx, f.tag)
		f.inUse = false
		f.dirty = false
		p.evictions++
		return i, nil
	}
	return 0, ErrPoolExhausted
}

// fetch returns the index of a pinned frame holding the page, reading it
// from disk on a miss. The caller must unpin it when done decoding.
func (p *Pool) fetch(h *heapFile, no uint32) (int, error) {
	tag := pageTag{h: h, no: no}
	p.mu.Lock()
	defer p.mu.Unlock()
	if i, ok := p.idx[tag]; ok {
		p.hits++
		p.frames[i].pins++
		return i, nil
	}
	p.misses++
	i, err := p.victimLocked()
	if err != nil {
		return 0, err
	}
	f := &p.frames[i]
	if err := h.readPage(no, f.buf); err != nil {
		return 0, fmt.Errorf("storage: buffer pool read of %s page %d: %w", h.name, no, err)
	}
	f.tag = tag
	f.inUse = true
	f.pins = 1
	f.refbit = false
	f.dirty = false
	p.idx[tag] = i
	return i, nil
}

// unpin releases one pin taken by fetch and marks the frame recently used.
func (p *Pool) unpin(i int) {
	p.mu.Lock()
	f := &p.frames[i]
	f.pins--
	f.refbit = true
	p.mu.Unlock()
}

// adopt installs a just-sealed tail page into the pool as a resident dirty
// frame, deferring its disk write to eviction or the next checkpoint flush.
// On ErrPoolExhausted the caller writes the page to disk directly instead.
func (p *Pool) adopt(h *heapFile, no uint32, data []byte) error {
	tag := pageTag{h: h, no: no}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.idx[tag]; ok {
		// A sealed page is adopted exactly once; a duplicate means heap
		// bookkeeping broke.
		return fmt.Errorf("storage: page %d of %s already resident", no, h.name)
	}
	i, err := p.victimLocked()
	if err != nil {
		return err
	}
	f := &p.frames[i]
	copy(f.buf, data)
	f.tag = tag
	f.inUse = true
	f.pins = 0
	f.refbit = true
	f.dirty = true
	p.idx[tag] = i
	return nil
}

// FlushDirty writes every dirty frame back to its heap file — the
// checkpoint hook: after a flush, eviction is pure frame recycling until new
// writes dirty pages again. Pinned frames are flushed too (their bytes are
// immutable sealed pages; pins only protect residency).
func (p *Pool) FlushDirty() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if !f.inUse || !f.dirty {
			continue
		}
		if err := f.tag.h.writePage(f.tag.no, f.buf); err != nil {
			return fmt.Errorf("storage: checkpoint writeback of %s page %d: %w", f.tag.h.name, f.tag.no, err)
		}
		f.dirty = false
		p.writebacks++
	}
	return nil
}

// invalidate drops every resident page of h without writeback (the heap is
// being dropped with its table).
func (p *Pool) invalidate(h *heapFile) {
	p.mu.Lock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.inUse && f.tag.h == h && f.pins == 0 {
			delete(p.idx, f.tag)
			f.inUse = false
			f.dirty = false
		}
	}
	p.mu.Unlock()
}

// Stats returns the pool's cumulative counters and current occupancy.
func (p *Pool) Stats() (stats PoolStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	stats.Capacity = len(p.frames)
	for i := range p.frames {
		if p.frames[i].inUse {
			stats.Resident++
			if p.frames[i].dirty {
				stats.Dirty++
			}
		}
	}
	stats.Hits, stats.Misses = p.hits, p.misses
	stats.Evictions, stats.Writebacks = p.evictions, p.writebacks
	return stats
}

// PoolStats is the buffer-pool snapshot surfaced on the admin interface and
// consumed by the larger-than-RAM benchmark.
type PoolStats struct {
	Capacity int // frames configured
	Resident int // frames currently holding a page
	Dirty    int // resident frames awaiting writeback

	Hits       uint64 // fetches served from a resident frame
	Misses     uint64 // fetches that read from disk
	Evictions  uint64 // frames recycled by CLOCK
	Writebacks uint64 // dirty pages written back (eviction + checkpoints)

	SpilledTables int // tables paging through this pool
	PinnedTables  int // tables kept fully resident by policy
	HeapPages     int // pages allocated across all heap files (incl. tails)
	// DeadSlots totals the heap records no version chain references anymore —
	// superseded/deleted tuples still occupying sealed pages (heaps only grow
	// until a restart rebuilds them).
	DeadSlots uint64

	// Tables lists each spillable table's heap footprint, sorted by name.
	Tables []PoolTableInfo
}

// PoolTableInfo is one spillable table's entry in PoolStats.
type PoolTableInfo struct {
	Name      string
	Pages     int    // heap pages allocated (sealed plus the in-memory tail)
	DeadSlots uint64 // heap records whose version was superseded, deleted, or GCed

	placed uint64 // records ever placed (internal: DeadSlots input)
}

// HitRatio returns hits/(hits+misses), or 1 when the pool is untouched.
func (s PoolStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 1
	}
	return float64(s.Hits) / float64(total)
}
