package storage_test

// External-package pool tests: drive the buffer pool's latched-miss protocol
// through the fault package's scriptable filesystem (fault imports wal which
// imports storage, so these cannot live in package storage). The in-package
// latch tests (pool_latch_test.go) pin the deterministic orderings; this
// file pins the user-visible consequence — a slow disk under one page never
// serializes the rest of the pool.

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wal"
)

// TestDelayedReadDoesNotSerializeLookups: two cold point lookups on
// different tables, each behind a fault-injected 250ms disk read, must
// overlap — the miss path reads outside every pool lock, so a stalled read
// parks only its own fetcher, not the shard set.
func TestDelayedReadDoesNotSerializeLookups(t *testing.T) {
	ffs := fault.NewFS(wal.OSFS())
	cat := storage.NewCatalog()
	err := cat.EnableSpillOpts(storage.SpillOptions{
		Dir: t.TempDir(), PoolPages: 8, PoolShards: 2, FS: ffs.HeapFS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.CloseSpill()

	schema := value.NewSchema(value.Col("id", value.TypeInt), value.Col("body", value.TypeString))
	payload := strings.Repeat("p", 200)
	tables := make([]*storage.Table, 2)
	for i, name := range []string{"a", "b"} {
		tbl, err := cat.Create(name, schema, "id")
		if err != nil {
			t.Fatal(err)
		}
		// ~12 heap pages per table against an 8-frame pool: the early pages
		// of both tables are guaranteed evicted by the later inserts.
		for r := 0; r < 450; r++ {
			if _, err := tbl.Insert(value.NewTuple(r, payload)); err != nil {
				t.Fatal(err)
			}
		}
		tables[i] = tbl
	}
	if err := cat.FlushPool(); err != nil {
		t.Fatal(err)
	}

	const delay = 250 * time.Millisecond
	readsBefore := ffs.Reads()
	ffs.DelayReads(delay)
	start := time.Now()
	var wg sync.WaitGroup
	for _, tbl := range tables {
		wg.Add(1)
		go func(tbl *storage.Table) {
			defer wg.Done()
			if _, row, ok := tbl.LookupPK(value.NewTuple(0)); !ok || row[1].Str() != payload {
				t.Errorf("%s: cold lookup failed", tbl.Name())
			}
		}(tbl)
	}
	wg.Wait()
	elapsed := time.Since(start)
	ffs.DelayReads(0)

	if got := ffs.Reads() - readsBefore; got != 2 {
		t.Fatalf("disk reads during lookups = %d, want 2 (both lookups must be cold, one page each)", got)
	}
	if elapsed >= 2*delay {
		t.Fatalf("lookups serialized: %v elapsed for two overlapping %v reads", elapsed, delay)
	}
}
