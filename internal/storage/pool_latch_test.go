package storage

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/value"
)

// gateFS is a HeapFS that counts page I/O per heap file and can park chosen
// page reads on a channel — a deterministic stand-in for a slow disk, used
// to pin down the pool's latch protocol (singleflight, non-blocking shards,
// eviction vs. loading frames).
type gateFS struct {
	mu     sync.Mutex
	reads  map[string]map[uint32]int
	writes map[string]int
	gates  map[string]map[uint32]chan struct{}
}

func newGateFS() *gateFS {
	return &gateFS{
		reads:  make(map[string]map[uint32]int),
		writes: make(map[string]int),
		gates:  make(map[string]map[uint32]chan struct{}),
	}
}

func (fs *gateFS) OpenFile(name string, flag int, perm os.FileMode) (HeapFile, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &gateFile{fs: fs, name: filepath.Base(name), f: f}, nil
}
func (fs *gateFS) Remove(name string) error                     { return os.Remove(name) }
func (fs *gateFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// blockReads parks every read of the heap's page until the returned release
// function runs.
func (fs *gateFS) blockReads(heap string, page uint32) (release func()) {
	ch := make(chan struct{})
	fs.mu.Lock()
	if fs.gates[heap] == nil {
		fs.gates[heap] = make(map[uint32]chan struct{})
	}
	fs.gates[heap][page] = ch
	fs.mu.Unlock()
	return func() {
		fs.mu.Lock()
		delete(fs.gates[heap], page)
		fs.mu.Unlock()
		close(ch)
	}
}

func (fs *gateFS) readCount(heap string, page uint32) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.reads[heap][page]
}

func (fs *gateFS) writeCount(heap string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writes[heap]
}

type gateFile struct {
	fs   *gateFS
	name string
	f    *os.File
}

func (g *gateFile) ReadAt(p []byte, off int64) (int, error) {
	page := uint32(off / PageSize)
	g.fs.mu.Lock()
	if g.fs.reads[g.name] == nil {
		g.fs.reads[g.name] = make(map[uint32]int)
	}
	g.fs.reads[g.name][page]++
	gate := g.fs.gates[g.name][page]
	g.fs.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return g.f.ReadAt(p, off)
}

func (g *gateFile) WriteAt(p []byte, off int64) (int, error) {
	g.fs.mu.Lock()
	g.fs.writes[g.name]++
	g.fs.mu.Unlock()
	return g.f.WriteAt(p, off)
}

func (g *gateFile) Close() error { return g.f.Close() }

func gateSpillCatalog(t *testing.T, fs *gateFS, pages, shards int) *Catalog {
	t.Helper()
	c := NewCatalog()
	err := c.EnableSpillOpts(SpillOptions{Dir: t.TempDir(), PoolPages: pages, PoolShards: shards, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.CloseSpill)
	return c
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// fillCold creates a spilled table, inserts n rows, flushes the pool, and
// evicts page 0 so the next fetch of it must read disk.
func fillCold(t *testing.T, c *Catalog, name string, n int) *Table {
	t.Helper()
	tbl, err := c.Create(name, coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert(value.NewTuple(i, coldBody(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushPool(); err != nil {
		t.Fatal(err)
	}
	c.spill.pool.discardPage(tbl.heap, 0)
	return tbl
}

// TestPoolLoadSingleflight: two fetchers racing for the same cold page
// perform exactly one disk read — the second parks on the frame's load latch
// (LoadWaits) instead of claiming a second frame (Misses).
func TestPoolLoadSingleflight(t *testing.T) {
	fs := newGateFS()
	c := gateSpillCatalog(t, fs, 8, 1)
	tbl := fillCold(t, c, "history", 1500)
	h, pool := tbl.heap, c.spill.pool
	base := pool.Stats()

	release := release2{fn: fs.blockReads("history.heap", 0)}
	defer release.once()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := pool.fetch(h, 0)
			errs[i] = err
			if err != nil {
				return
			}
			if pageCount(f.buf) == 0 {
				t.Errorf("fetcher %d decoded an empty page", i)
			}
			pool.unpin(f)
		}(i)
	}
	// One fetcher must be parked in the (blocked) disk read, the other on the
	// frame latch, before we open the gate — otherwise the race isn't real.
	waitFor(t, "loader to start reading", func() bool { return fs.readCount("history.heap", 0) == 1 })
	waitFor(t, "second fetcher to park on the latch", func() bool {
		return pool.Stats().LoadWaits == base.LoadWaits+1
	})
	release.once()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fetcher %d: %v", i, err)
		}
	}
	if got := fs.readCount("history.heap", 0); got != 1 {
		t.Errorf("page 0 read %d times, want exactly 1", got)
	}
	stats := pool.Stats()
	if stats.Misses != base.Misses+1 {
		t.Errorf("misses: %d -> %d, want exactly one install", base.Misses, stats.Misses)
	}
	if stats.LoadWaits != base.LoadWaits+1 {
		t.Errorf("load waits: %d -> %d, want exactly one", base.LoadWaits, stats.LoadWaits)
	}
}

// release2 makes a blockReads release function idempotent so tests can both
// defer it (cleanup on failure) and call it at the scripted moment.
type release2 struct {
	o  sync.Once
	fn func()
}

func (r *release2) once() { r.o.Do(r.fn) }

// TestBlockedLoadDoesNotBlockOtherPages: while one page's disk read is
// parked, hits and misses on every other page — same shard or not — keep
// flowing, because the shard mutex is released for the duration of the read.
// (Under the old single-mutex pool this test deadlocks until the gate
// opens.) Per-shard counters must show the misses spread across shards.
func TestBlockedLoadDoesNotBlockOtherPages(t *testing.T) {
	fs := newGateFS()
	c := gateSpillCatalog(t, fs, 32, 4)
	blocked := fillCold(t, c, "t0", 1200)
	others := make([]*Table, 3)
	for i := range others {
		others[i] = fillCold(t, c, "t"+string(rune('1'+i)), 1200)
	}

	release := release2{fn: fs.blockReads("t0.heap", 0)}
	defer release.once()

	done := make(chan value.Tuple, 1)
	go func() {
		// Row 1 was the first insert: it lives on page 0, which is cold and
		// gated — this read parks inside ReadAt holding no lock.
		tup, ok := blocked.GetRef(RowID(1))
		if !ok {
			t.Error("blocked read lost its row")
		}
		done <- tup
	}()
	waitFor(t, "gated read to start", func() bool { return fs.readCount("t0.heap", 0) == 1 })

	// With t0's read still parked: full point-read passes over three other
	// tables (mixes pool hits and cold misses) must all complete.
	for _, tbl := range others {
		for i := 0; i < 1200; i += 7 {
			if _, _, ok := tbl.LookupPK(value.NewTuple(i)); !ok {
				t.Fatalf("read of %s row %d failed behind a blocked load", tbl.Name(), i)
			}
		}
	}
	select {
	case <-done:
		t.Fatal("gated read completed before release — the gate never engaged")
	default:
	}
	release.once()
	tup := <-done
	if tup[1].Str() != coldBody(0) {
		t.Errorf("blocked read decoded %q", tup[1].Str())
	}

	stats, _ := c.PoolStats()
	if len(stats.Shards) != 4 {
		t.Fatalf("shard count: %d, want 4", len(stats.Shards))
	}
	withMisses := 0
	for _, sh := range stats.Shards {
		if sh.Misses > 0 {
			withMisses++
		}
	}
	if withMisses < 2 {
		t.Errorf("misses concentrated on %d shard(s); want them spread: %+v", withMisses, stats.Shards)
	}
}

// TestEvictionRacesLoadingFrame: CLOCK sweeps over a frame whose disk read
// is in flight must skip it (the loader's pin protects it) while the rest of
// the shard keeps evicting and recycling normally.
func TestEvictionRacesLoadingFrame(t *testing.T) {
	fs := newGateFS()
	c := gateSpillCatalog(t, fs, 2, 1)
	tbl := fillCold(t, c, "history", 600)
	h, pool := tbl.heap, c.spill.pool

	release := release2{fn: fs.blockReads("history.heap", 0)}
	defer release.once()

	type result struct {
		f   *frame
		err error
	}
	done := make(chan result, 1)
	go func() {
		f, err := pool.fetch(h, 0)
		done <- result{f, err}
	}()
	waitFor(t, "gated load to start", func() bool { return fs.readCount("history.heap", 0) == 1 })

	// Churn every other page through the one remaining frame: dozens of CLOCK
	// sweeps pass the loading frame and must neither evict it nor hang.
	for round := 0; round < 25; round++ {
		for pg := uint32(1); pg <= 5; pg++ {
			f, err := pool.fetch(h, pg)
			if err != nil {
				t.Fatalf("fetch page %d during in-flight load: %v", pg, err)
			}
			if pageCount(f.buf) == 0 {
				t.Fatalf("page %d decoded empty during in-flight load", pg)
			}
			pool.unpin(f)
		}
	}
	release.once()
	res := <-done
	if res.err != nil {
		t.Fatalf("gated load failed: %v", res.err)
	}
	if pageCount(res.f.buf) == 0 {
		t.Error("gated load published an empty page")
	}
	pool.unpin(res.f)
	if got := fs.readCount("history.heap", 0); got != 1 {
		t.Errorf("page 0 read %d times, want 1", got)
	}
}

// TestDropWhileScanPinned: dropping a table while a reader still pins one of
// its pages must mark the frame discard-on-unpin — the bytes stay decodable
// for the pinned reader, the frame is freed on the last unpin, and the pool
// NEVER writes the (dirty) frame back into the retired heap file. This is
// the regression test for invalidate skipping pinned frames.
func TestDropWhileScanPinned(t *testing.T) {
	fs := newGateFS()
	c := gateSpillCatalog(t, fs, 4, 1)
	tbl, err := c.Create("history", coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	// ~5 pages; the first four seal into the 4-frame pool as dirty frames.
	for i := 0; i < 300; i++ {
		if _, err := tbl.Insert(value.NewTuple(i, coldBody(i))); err != nil {
			t.Fatal(err)
		}
	}
	h, pool := tbl.heap, c.spill.pool
	f, err := pool.fetch(h, 2) // pin a dirty resident frame, like a scan mid-decode
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("history"); err != nil {
		t.Fatal(err)
	}
	s := f.shard
	s.mu.Lock()
	dead, pins := f.dead, f.pins
	s.mu.Unlock()
	if !dead || pins != 1 {
		t.Fatalf("pinned frame after drop: dead=%v pins=%d, want dead with 1 pin", dead, pins)
	}
	if pageCount(f.buf) == 0 {
		t.Error("pinned frame's bytes unreadable after drop")
	}

	// Churn another table through every frame: under the old invalidate the
	// stale dirty frame would be evicted and written back into the dropped
	// heap file.
	wBefore := fs.writeCount("history.heap")
	other, err := c.Create("other", coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		if _, err := other.Insert(value.NewTuple(i, coldBody(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 600; i += 11 {
		if _, _, ok := other.LookupPK(value.NewTuple(i)); !ok {
			t.Fatalf("read of other row %d failed", i)
		}
	}
	if got := fs.writeCount("history.heap"); got != wBefore {
		t.Errorf("dropped heap written to %d time(s) after drop", got-wBefore)
	}

	pool.unpin(f)
	s.mu.Lock()
	freed := !f.inUse
	s.mu.Unlock()
	if !freed {
		t.Error("dead frame not freed on last unpin")
	}
}
