package storage

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/value"
)

// spillCatalog returns a catalog paging through a pool of the given frame
// count, with heaps in a test temp dir.
func spillCatalog(t *testing.T, poolPages int, pinned ...string) *Catalog {
	t.Helper()
	c := NewCatalog()
	if err := c.EnableSpill(t.TempDir(), poolPages, pinned); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.CloseSpill)
	return c
}

func coldSchema() *value.Schema {
	return value.NewSchema(value.Col("id", value.TypeInt), value.Col("body", value.TypeString))
}

// coldBody derives a row's payload from its key, so any reader can verify a
// tuple is internally consistent no matter when it was paged in.
func coldBody(i int) string {
	return fmt.Sprintf("row-%06d-%s", i, strings.Repeat("x", 100))
}

func TestSpillInsertScanLookup(t *testing.T) {
	c := spillCatalog(t, 2)
	tbl, err := c.Create("history", coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000 // ~115 B records, ~70/page → ~28 pages through 2 frames
	ids := make([]RowID, n)
	for i := 0; i < n; i++ {
		id, err := tbl.Insert(value.NewTuple(i, coldBody(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Point reads across the whole key space: most resolve through the pool.
	for i := 0; i < n; i += 97 {
		tup, err := tbl.Get(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if got := tup[1].Str(); got != coldBody(i) {
			t.Fatalf("row %d: got %q", i, got)
		}
	}
	// PK probes load the visible version to compare keys.
	if _, tup, ok := tbl.LookupPK(value.NewTuple(1234)); !ok || tup[1].Str() != coldBody(1234) {
		t.Fatalf("LookupPK(1234) = %v, %v", tup, ok)
	}
	// Full scan must see every row exactly once with consistent payloads.
	seen := make(map[int]bool, n)
	tbl.ScanAt(Latest(), func(_ RowID, tup value.Tuple) bool {
		i := int(tup[0].Int())
		if seen[i] {
			t.Fatalf("row %d scanned twice", i)
		}
		if tup[1].Str() != coldBody(i) {
			t.Fatalf("row %d: inconsistent payload", i)
		}
		seen[i] = true
		return true
	})
	if len(seen) != n {
		t.Fatalf("scan saw %d rows, want %d", len(seen), n)
	}
	stats, ok := c.PoolStats()
	if !ok {
		t.Fatal("PoolStats reported spill disabled")
	}
	if stats.HeapPages <= stats.Capacity {
		t.Fatalf("dataset fits the pool (%d heap pages, %d frames); test proves nothing", stats.HeapPages, stats.Capacity)
	}
	if stats.Evictions == 0 {
		t.Error("no evictions despite dataset exceeding pool")
	}
	if stats.SpilledTables != 1 || len(stats.Tables) != 1 || stats.Tables[0].Name != "history" {
		t.Errorf("table accounting: %+v", stats)
	}
}

func TestSpillUpdateDeleteGC(t *testing.T) {
	c := spillCatalog(t, 2)
	tbl, err := c.Create("history", coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	ids := make([]RowID, n)
	for i := 0; i < n; i++ {
		id, err := tbl.Insert(value.NewTuple(i, coldBody(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Update every third row (old version stays on its page; the new version
	// spills too), delete every seventh.
	for i := 0; i < n; i += 3 {
		if _, err := tbl.Update(ids[i], value.NewTuple(i, coldBody(i+1000000))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 7 {
		if _, err := tbl.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	check := func() {
		for i := 0; i < n; i++ {
			tup, err := tbl.Get(ids[i])
			if i%7 == 0 {
				if err == nil {
					t.Fatalf("row %d still visible after delete", i)
				}
				continue
			}
			if err != nil {
				t.Fatalf("row %d: %v", i, err)
			}
			want := coldBody(i)
			if i%3 == 0 {
				want = coldBody(i + 1000000)
			}
			if tup[1].Str() != want {
				t.Fatalf("row %d: got %q", i, tup[1].Str())
			}
		}
	}
	check()
	// GC prunes superseded spilled versions (dropKeys pages them in to fix up
	// indexes); the surviving state must be unchanged.
	if c.GC() == 0 {
		t.Error("GC reclaimed nothing despite superseded versions")
	}
	check()
}

func TestSpillWriterVisibility(t *testing.T) {
	c := spillCatalog(t, 2)
	tbl, err := c.Create("history", coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	// Fill enough pages that the writer's uncommitted row is on a paged-out
	// region by the time we look.
	for i := 0; i < 300; i++ {
		if _, err := tbl.Insert(value.NewTuple(i, coldBody(i))); err != nil {
			t.Fatal(err)
		}
	}
	w := c.NewWriter()
	id, err := tbl.InsertW(w, value.NewTuple(9999, coldBody(9999)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 300; i < 600; i++ {
		if _, err := tbl.Insert(value.NewTuple(i, coldBody(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := tbl.GetRefAt(Latest(), id); ok {
		t.Fatal("uncommitted spilled row visible to Latest")
	}
	pre := SnapshotAt(c.Clock(), nil)
	w.Commit()
	if tup, ok := tbl.GetRefAt(Latest(), id); !ok || tup[1].Str() != coldBody(9999) {
		t.Fatalf("committed spilled row: %v, %v", tup, ok)
	}
	if _, ok := tbl.GetRefAt(pre, id); ok {
		t.Fatal("pre-commit snapshot sees the new row")
	}
}

func TestPoolExhaustedTyped(t *testing.T) {
	c := spillCatalog(t, 2)
	tbl, err := c.Create("history", coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := tbl.Insert(value.NewTuple(i, coldBody(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushPool(); err != nil {
		t.Fatal(err)
	}
	h := tbl.heap
	pool := c.spill.pool
	// Pin both frames on distinct sealed pages.
	f0, err := pool.fetch(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := pool.fetch(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A third distinct page must fail fast with the typed error — never block.
	if _, err := pool.fetch(h, 2); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("fetch with all frames pinned: %v", err)
	}
	if err := pool.adopt(h, 99, make([]byte, PageSize)); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("adopt with all frames pinned: %v", err)
	}
	// Table reads still succeed: load falls back to an unbuffered read, and
	// inserts seal past the pool straight to disk.
	for i := 0; i < 500; i += 17 {
		if _, _, ok := tbl.LookupPK(value.NewTuple(i)); !ok {
			t.Fatalf("read of row %d failed under pool exhaustion", i)
		}
	}
	for i := 500; i < 700; i++ {
		if _, err := tbl.Insert(value.NewTuple(i, coldBody(i))); err != nil {
			t.Fatalf("insert under pool exhaustion: %v", err)
		}
	}
	pool.unpin(f0)
	pool.unpin(f1)
	if _, err := pool.fetch(h, 2); err != nil {
		t.Fatalf("fetch after unpin: %v", err)
	}
	stats := pool.Stats()
	if stats.Resident == 0 || stats.Capacity != 2 {
		t.Errorf("stats after exhaustion cycle: %+v", stats)
	}
}

// TestEvictionRacesPinnedScan drives concurrent scans and point reads through
// a two-frame pool while a writer keeps sealing new pages, so evictions and
// pinned decodes constantly interleave. Every observed tuple must be
// internally consistent; run under -race this exercises the sealed-page
// immutability and atomic-tail protocol.
func TestEvictionRacesPinnedScan(t *testing.T) {
	c := spillCatalog(t, 2)
	tbl, err := c.Create("history", coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 400
	ids := make([]RowID, seed)
	for i := 0; i < seed; i++ {
		id, err := tbl.Insert(value.NewTuple(i, coldBody(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 8)
	verify := func(tup value.Tuple) bool {
		if tup[1].Str() != coldBody(int(tup[0].Int())) {
			select {
			case fail <- fmt.Sprintf("inconsistent tuple for row %d", tup[0].Int()):
			default:
			}
			return false
		}
		return true
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				if round%2 == 0 {
					tbl.ScanAt(Latest(), func(_ RowID, tup value.Tuple) bool {
						return verify(tup)
					})
					continue
				}
				for i := r; i < seed; i += 3 {
					if tup, ok := tbl.GetRefAt(Latest(), ids[i]); ok && !verify(tup) {
						return
					}
				}
			}
		}(r)
	}
	// Writer: keep appending (sealing pages into the pool) and updating old
	// rows (forcing materialize loads under the exclusive latch).
	for i := seed; i < seed+800; i++ {
		if _, err := tbl.Insert(value.NewTuple(i, coldBody(i))); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			// Rewrite an old row with the same derived payload: the chain grows
			// and materialize pages the head in, but id↔body stays verifiable.
			j := i % seed
			if _, err := tbl.Update(ids[j], value.NewTuple(j, coldBody(j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

func TestPinResidentMaterializes(t *testing.T) {
	c := spillCatalog(t, 2)
	tbl, err := c.Create("answers_like", coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	ids := make([]RowID, n)
	for i := 0; i < n; i++ {
		id, err := tbl.Insert(value.NewTuple(i, coldBody(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if tbl.heap == nil {
		t.Fatal("table did not spill before pinning")
	}
	c.PinResident("ANSWERS_LIKE") // case-insensitive, like every catalog name
	if tbl.heap != nil {
		t.Fatal("heap still attached after PinResident")
	}
	for i := 0; i < n; i++ {
		tup, err := tbl.Get(ids[i])
		if err != nil || tup[1].Str() != coldBody(i) {
			t.Fatalf("row %d after materialize: %v, %v", i, tup, err)
		}
	}
	stats, _ := c.PoolStats()
	if stats.SpilledTables != 0 {
		t.Errorf("retired heap still counted: %+v", stats)
	}
	// New tables under the now-pinned name stay resident from birth.
	if err := c.Drop("answers_like"); err != nil {
		t.Fatal(err)
	}
	tbl2, err := c.Create("answers_like", coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.heap != nil {
		t.Error("pinned relation re-created with a heap")
	}
}

func TestSpillOversizedTupleStaysResident(t *testing.T) {
	c := spillCatalog(t, 2)
	tbl, err := c.Create("history", coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("y", PageSize) // encodes past maxRecordLen
	id, err := tbl.Insert(value.NewTuple(1, big))
	if err != nil {
		t.Fatal(err)
	}
	tup, err := tbl.Get(id)
	if err != nil || tup[1].Str() != big {
		t.Fatalf("oversized tuple: len %d, err %v", len(tup[1].Str()), err)
	}
}

func TestEnableSpillErrors(t *testing.T) {
	c := NewCatalog()
	if err := c.EnableSpill(t.TempDir(), 4, nil); err != nil {
		t.Fatal(err)
	}
	defer c.CloseSpill()
	if err := c.EnableSpill(t.TempDir(), 4, nil); err == nil {
		t.Error("double EnableSpill accepted")
	}
	c2 := NewCatalog()
	if _, err := c2.Create("t", coldSchema()); err != nil {
		t.Fatal(err)
	}
	if err := c2.EnableSpill(t.TempDir(), 4, nil); err == nil {
		t.Error("EnableSpill on populated catalog accepted")
	}
}

func TestSpillDropRetiresHeap(t *testing.T) {
	c := spillCatalog(t, 2)
	tbl, err := c.Create("history", coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := tbl.Insert(value.NewTuple(i, coldBody(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Drop("history"); err != nil {
		t.Fatal(err)
	}
	stats, _ := c.PoolStats()
	if stats.SpilledTables != 0 || stats.HeapPages != 0 {
		t.Errorf("dropped table still accounted: %+v", stats)
	}
	// The pool frames the table occupied are free again.
	tbl2, err := c.Create("history2", coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := tbl2.Insert(value.NewTuple(i, coldBody(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := tbl2.LookupPK(value.NewTuple(42)); !ok {
		t.Error("reads through recycled frames failed")
	}
}

// TestSpillDeadSlots: the dead-slot gauge tracks heap records no version
// chain references anymore that still occupy pages. Superseding or deleting
// a row materializes the old version for index fix-up, orphaning its slot;
// GC plus the page compactor then free mostly- and fully-dead pages, which
// drives the gauge back DOWN and shrinks the heap without a restart.
func TestSpillDeadSlots(t *testing.T) {
	c := spillCatalog(t, 2)
	tbl, err := c.Create("history", coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	ids := make([]RowID, n)
	for i := 0; i < n; i++ {
		id, err := tbl.Insert(value.NewTuple(i, coldBody(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	stats, ok := c.PoolStats()
	if !ok {
		t.Fatal("PoolStats reported spill disabled")
	}
	if stats.DeadSlots != 0 {
		t.Fatalf("dead slots with every version live: %d", stats.DeadSlots)
	}
	pagesBefore := stats.HeapPages
	// Supersede and delete versions: index fix-up pages the old versions in,
	// orphaning their heap slots.
	for i := 0; i < n; i += 2 {
		if _, err := tbl.Update(ids[i], value.NewTuple(i, coldBody(i+1000000))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i += 4 {
		if _, err := tbl.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	stats, _ = c.PoolStats()
	deadBefore := stats.DeadSlots
	if deadBefore == 0 {
		t.Fatal("no dead slots after 200 updates + 100 deletes")
	}
	// GC prunes the superseded chains (more slots die), then the page
	// compactor rewrites mostly-dead pages and frees fully-dead ones: the
	// gauge must come back down and the heap's data footprint must shrink.
	if c.GC() == 0 {
		t.Fatal("GC reclaimed nothing")
	}
	stats, _ = c.PoolStats()
	if stats.DeadSlots >= deadBefore {
		t.Fatalf("dead slots did not shrink after GC: %d -> %d", deadBefore, stats.DeadSlots)
	}
	if stats.ReclaimedPages == 0 {
		t.Error("GC freed no pages despite a delete/update-heavy workload")
	}
	if stats.HeapPages >= pagesBefore+stats.FreePages {
		t.Errorf("heap data footprint did not shrink: %d pages before churn, %d used + %d free after GC",
			pagesBefore, stats.HeapPages, stats.FreePages)
	}
	var perTable uint64
	for _, ti := range stats.Tables {
		perTable += ti.DeadSlots
	}
	if perTable != stats.DeadSlots {
		t.Errorf("per-table dead slots sum %d != total %d", perTable, stats.DeadSlots)
	}
	// Surviving rows are intact through compaction's rewrites.
	for i := 0; i < n; i++ {
		tup, err := tbl.Get(ids[i])
		if i%4 == 1 {
			if err == nil {
				t.Fatalf("row %d visible after delete", i)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		want := coldBody(i)
		if i%2 == 0 {
			want = coldBody(i + 1000000)
		}
		if tup[1].Str() != want {
			t.Fatalf("row %d: got %q", i, tup[1].Str())
		}
	}
}

// TestSpillPageReuse: freed pages go back to the tail allocator, so a
// delete-heavy table stops growing its heap file — the allocated page count
// (used + free) stays flat across churn rounds instead of accumulating.
func TestSpillPageReuse(t *testing.T) {
	c := spillCatalog(t, 4)
	tbl, err := c.Create("history", coldSchema(), "id")
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	ids := make([]RowID, 0, n)
	for i := 0; i < n; i++ {
		id, err := tbl.Insert(value.NewTuple(i, coldBody(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	allocated := func() int {
		stats, _ := c.PoolStats()
		return stats.HeapPages + stats.FreePages
	}
	base := allocated()
	for round := 0; round < 5; round++ {
		for _, id := range ids {
			if _, err := tbl.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
		c.GC()
		ids = ids[:0]
		for i := 0; i < n; i++ {
			id, err := tbl.Insert(value.NewTuple(i, coldBody(i)))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
	}
	// Five full rewrite rounds through a reclaiming heap: the file may jitter
	// by a couple of pages (tail boundaries, chains awaiting the next GC) but
	// must not grow ~5x the way a grow-only heap would.
	if grown := allocated(); grown > base+base/2+2 {
		t.Errorf("heap grew despite reclamation: %d pages after 5 churn rounds, %d after first fill", grown, base)
	}
	for i, id := range ids {
		tup, err := tbl.Get(id)
		if err != nil || tup[1].Str() != coldBody(i) {
			t.Fatalf("row %d after churn: %v, %v", i, tup, err)
		}
	}
}
