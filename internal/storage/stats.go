package storage

import (
	"sort"

	"repro/internal/value"
)

// IndexStat describes one secondary index for the planner: which columns it
// covers and the cardinality statistics storage maintains incrementally.
// Nothing here is computed by scanning — distinct counts are kept up to date
// by index maintenance and min/max fall out of the ordered representation —
// so a Stats snapshot is cheap enough for every planning pass.
type IndexStat struct {
	Name    string // user-assigned index name, "" when unnamed
	Cols    []int  // indexed column offsets (ordered indexes have exactly one)
	Ordered bool
	// Distinct counts distinct keys currently indexed. Index entries cover
	// every stored version of a row, so this slightly overcounts the live
	// state while old versions await GC — exactly the fidelity a cost
	// estimate needs.
	Distinct int
	// Ordered indexes only: how many entries carry a non-NULL key, and the
	// smallest/largest non-NULL key (value.Null when there is none). Range
	// selectivity interpolates between Min and Max.
	NonNull  int
	Min, Max value.Value
}

// TableStats is the planner's per-table statistics snapshot.
type TableStats struct {
	Rows    int   // incrementally maintained live-row estimate
	PKCols  []int // primary key column offsets, nil if none
	Indexes []IndexStat
}

// Stats snapshots the table's statistics under the shared latch: the row
// estimate, the primary key, and one IndexStat per hash and ordered index.
// No table data is touched.
func (t *Table) Stats() TableStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := TableStats{Rows: t.live, PKCols: t.pkCols}
	keys := make([]string, 0, len(t.indexes))
	for k := range t.indexes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ix := t.indexes[k]
		st.Indexes = append(st.Indexes, IndexStat{
			Name:     ix.name,
			Cols:     append([]int(nil), ix.cols...),
			Distinct: len(ix.m),
		})
	}
	var offs []int
	for o := range t.ordered {
		offs = append(offs, o)
	}
	sort.Ints(offs)
	for _, o := range offs {
		ox := t.ordered[o]
		s := IndexStat{
			Name:     ox.name,
			Cols:     []int{o},
			Ordered:  true,
			Distinct: ox.distinct,
			Min:      value.Null,
			Max:      value.Null,
		}
		// NULLs sort first, so the non-NULL entries are a suffix.
		nn := sort.Search(len(ox.entries), func(i int) bool {
			return !ox.entries[i].v.IsNull()
		})
		s.NonNull = len(ox.entries) - nn
		if nn > 0 {
			s.Distinct-- // drop the NULL group from the key count
		}
		if nn < len(ox.entries) {
			s.Min = ox.entries[nn].v
			s.Max = ox.entries[len(ox.entries)-1].v
		}
		st.Indexes = append(st.Indexes, s)
	}
	return st
}

// HasEqIndex reports whether an equality probe on exactly the given column
// offsets is index-backed: the primary key or a hash index over those
// columns.
func (t *Table) HasEqIndex(cols []int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pk != nil && equalOffsets(cols, t.pkCols) {
		return true
	}
	var nb [32]byte
	_, ok := t.indexes[string(appendIndexName(nb[:0], cols))]
	return ok
}

func equalOffsets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IndexInfo names one secondary index: the WAL snapshot writer re-emits
// these, and EXPLAIN prints them.
type IndexInfo struct {
	Name    string // "" when unnamed
	Cols    []string
	Ordered bool
}

// IndexMeta returns every secondary index (hash then ordered), in
// deterministic order.
func (t *Table) IndexMeta() []IndexInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	keys := make([]string, 0, len(t.indexes))
	for k := range t.indexes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]IndexInfo, 0, len(keys)+len(t.ordered))
	for _, k := range keys {
		ix := t.indexes[k]
		names := make([]string, len(ix.cols))
		for i, o := range ix.cols {
			names[i] = t.schema.Columns[o].Name
		}
		out = append(out, IndexInfo{Name: ix.name, Cols: names})
	}
	var offs []int
	for o := range t.ordered {
		offs = append(offs, o)
	}
	sort.Ints(offs)
	for _, o := range offs {
		out = append(out, IndexInfo{
			Name:    t.ordered[o].name,
			Cols:    []string{t.schema.Columns[o].Name},
			Ordered: true,
		})
	}
	return out
}
