// Package storage implements the in-memory relational storage engine that
// Youtopia's execution engine and coordination component read and write.
//
// It provides named tables with typed schemas, optional primary keys, hash
// indexes for equality lookups, and physically consistent concurrent access.
// Transactional isolation (strict two-phase locking) is layered on top by
// package txn; the storage layer itself only guarantees that individual
// operations are atomic and that scans observe a consistent snapshot.
package storage

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"sync"

	"repro/internal/value"
)

// RowID identifies a row within a table for the lifetime of the table. IDs
// are never reused.
type RowID uint64

// ErrNotFound is returned when a row or table does not exist.
var ErrNotFound = errors.New("storage: not found")

// ErrDuplicateKey is returned when an insert or update would violate the
// table's primary key.
var ErrDuplicateKey = errors.New("storage: duplicate primary key")

// Table is a heap of tuples with a schema, optional primary key, and hash
// indexes. All methods are safe for concurrent use.
type Table struct {
	name   string
	schema *value.Schema
	log    *logState // shared with the owning catalog; nil when standalone

	mu      sync.RWMutex
	rows    map[RowID]value.Tuple
	nextID  RowID
	pkCols  []int            // primary key column offsets, nil if none
	pk      map[string]RowID // PK tuple key → row
	indexes map[string]*hashIndex
	ordered map[int]*orderedIndex // column offset → ordered index
	version uint64                // bumped on every mutation; used for cheap change detection
}

// hashIndex maps the key of a column projection to the set of rows holding it.
type hashIndex struct {
	cols []int
	m    map[string]map[RowID]struct{}
}

func newHashIndex(cols []int) *hashIndex {
	return &hashIndex{cols: cols, m: make(map[string]map[RowID]struct{})}
}

// key renders the projection's key directly from the row — no intermediate
// Project tuple; index maintenance runs on every insert/delete.
func (ix *hashIndex) key(t value.Tuple) string {
	var kb [64]byte
	b := kb[:0]
	for i, c := range ix.cols {
		if i > 0 {
			b = append(b, '|')
		}
		b = t[c].AppendKey(b)
	}
	return string(b)
}

func (ix *hashIndex) add(id RowID, t value.Tuple) {
	k := ix.key(t)
	s := ix.m[k]
	if s == nil {
		s = make(map[RowID]struct{})
		ix.m[k] = s
	}
	s[id] = struct{}{}
}

func (ix *hashIndex) remove(id RowID, t value.Tuple) {
	k := ix.key(t)
	if s := ix.m[k]; s != nil {
		delete(s, id)
		if len(s) == 0 {
			delete(ix.m, k)
		}
	}
}

// NewTable creates a table with the given schema. pkCols, if non-empty, names
// columns forming a primary key (uniqueness-enforced and auto-indexed).
func NewTable(name string, schema *value.Schema, pkCols ...string) (*Table, error) {
	t := &Table{
		name:    name,
		schema:  schema,
		rows:    make(map[RowID]value.Tuple),
		nextID:  1,
		indexes: make(map[string]*hashIndex),
	}
	for _, c := range pkCols {
		o := schema.Ordinal(c)
		if o < 0 {
			return nil, fmt.Errorf("storage: table %s: unknown primary key column %q", name, c)
		}
		t.pkCols = append(t.pkCols, o)
	}
	if len(t.pkCols) > 0 {
		t.pk = make(map[string]RowID)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema. The schema is immutable after creation.
func (t *Table) Schema() *value.Schema { return t.schema }

// Version returns a counter bumped on every mutation. The coordination
// component uses it to detect base-table changes that may unblock pending
// entangled queries.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// CreateIndex builds (or reuses) a hash index on the given columns.
func (t *Table) CreateIndex(cols ...string) error {
	offs := make([]int, len(cols))
	for i, c := range cols {
		o := t.schema.Ordinal(c)
		if o < 0 {
			return fmt.Errorf("storage: table %s: unknown index column %q", t.name, c)
		}
		offs[i] = o
	}
	name := indexName(offs)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[name]; ok {
		return nil
	}
	ix := newHashIndex(offs)
	for id, row := range t.rows {
		ix.add(id, row)
	}
	t.indexes[name] = ix
	t.log.emit(LogRecord{Op: OpCreateIndex, Table: t.name, Cols: cols})
	return nil
}

// PrimaryKey returns the names of the primary key columns (nil if none).
func (t *Table) PrimaryKey() []string {
	var names []string
	for _, o := range t.pkCols {
		names = append(names, t.schema.Columns[o].Name)
	}
	return names
}

// Indexes returns the column-name lists of the table's hash indexes, in
// deterministic order.
func (t *Table) Indexes() [][]string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	keys := make([]string, 0, len(t.indexes))
	for k := range t.indexes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		ix := t.indexes[k]
		names := make([]string, len(ix.cols))
		for i, o := range ix.cols {
			names[i] = t.schema.Columns[o].Name
		}
		out = append(out, names)
	}
	return out
}

// HasIndex reports whether an index exists on exactly the given column offsets.
func (t *Table) HasIndex(cols []int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[indexName(cols)]
	return ok
}

func indexName(offs []int) string {
	var b [32]byte
	return string(appendIndexName(b[:0], offs))
}

// appendIndexName writes the index map key for offs into b; probing
// t.indexes with string(appendIndexName(stack, offs)) does not allocate.
func appendIndexName(b []byte, offs []int) []byte {
	for _, o := range offs {
		b = append(b, 'c')
		b = strconv.AppendInt(b, int64(o), 10)
		b = append(b, ',')
	}
	return b
}

// Insert validates and appends a tuple, returning its RowID.
func (t *Table) Insert(tup value.Tuple) (RowID, error) {
	tup, err := t.schema.Validate(tup)
	if err != nil {
		return 0, fmt.Errorf("storage: insert into %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pk != nil {
		k := tup.Project(t.pkCols).Key()
		if _, dup := t.pk[k]; dup {
			return 0, fmt.Errorf("%w: %s in %s", ErrDuplicateKey, tup.Project(t.pkCols), t.name)
		}
		t.pk[k] = t.nextID
	}
	id := t.nextID
	t.nextID++
	t.rows[id] = tup.Clone()
	for _, ix := range t.indexes {
		ix.add(id, tup)
	}
	for _, ox := range t.ordered {
		ox.add(id, tup)
	}
	t.version++
	t.log.emit(LogRecord{Op: OpInsert, Table: t.name, RowID: id, Row: tup})
	return id, nil
}

// Get returns the tuple stored under id.
func (t *Table) Get(id RowID) (value.Tuple, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("%w: row %d in %s", ErrNotFound, id, t.name)
	}
	return row.Clone(), nil
}

// GetRef returns the stored row WITHOUT copying, like Scan does for its
// callback. Values are immutable and rows are replaced wholesale on update,
// so the reference stays valid and race-free; the caller must not modify
// the returned tuple. This is the zero-copy read the matcher uses when
// probing installed answers at every search node.
func (t *Table) GetRef(id RowID) (value.Tuple, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[id]
	return row, ok
}

// Delete removes the row with the given id and returns the removed tuple
// (so callers such as the transaction undo log can restore it).
func (t *Table) Delete(id RowID) (value.Tuple, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("%w: row %d in %s", ErrNotFound, id, t.name)
	}
	delete(t.rows, id)
	if t.pk != nil {
		delete(t.pk, row.Project(t.pkCols).Key())
	}
	for _, ix := range t.indexes {
		ix.remove(id, row)
	}
	for _, ox := range t.ordered {
		ox.remove(id, row)
	}
	t.version++
	t.log.emit(LogRecord{Op: OpDelete, Table: t.name, RowID: id})
	return row, nil
}

// Update replaces the tuple stored under id and returns the previous tuple.
func (t *Table) Update(id RowID, tup value.Tuple) (value.Tuple, error) {
	tup, err := t.schema.Validate(tup)
	if err != nil {
		return nil, fmt.Errorf("storage: update %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("%w: row %d in %s", ErrNotFound, id, t.name)
	}
	if t.pk != nil {
		oldK := old.Project(t.pkCols).Key()
		newK := tup.Project(t.pkCols).Key()
		if oldK != newK {
			if _, dup := t.pk[newK]; dup {
				return nil, fmt.Errorf("%w: %s in %s", ErrDuplicateKey, tup.Project(t.pkCols), t.name)
			}
			delete(t.pk, oldK)
			t.pk[newK] = id
		}
	}
	for _, ix := range t.indexes {
		ix.remove(id, old)
		ix.add(id, tup)
	}
	for _, ox := range t.ordered {
		ox.remove(id, old)
		ox.add(id, tup)
	}
	t.rows[id] = tup.Clone()
	t.version++
	t.log.emit(LogRecord{Op: OpUpdate, Table: t.name, RowID: id, Row: tup})
	return old, nil
}

// RestoreAt reinserts a tuple under a specific RowID; it is used only by the
// transaction undo log to reverse a Delete. The id must not be live.
func (t *Table) RestoreAt(id RowID, tup value.Tuple) error {
	tup, err := t.schema.Validate(tup)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.rows[id]; exists {
		return fmt.Errorf("storage: RestoreAt: row %d already live in %s", id, t.name)
	}
	if t.pk != nil {
		t.pk[tup.Project(t.pkCols).Key()] = id
	}
	t.rows[id] = tup.Clone()
	for _, ix := range t.indexes {
		ix.add(id, tup)
	}
	for _, ox := range t.ordered {
		ox.add(id, tup)
	}
	if id >= t.nextID {
		t.nextID = id + 1
	}
	t.version++
	t.log.emit(LogRecord{Op: OpRestore, Table: t.name, RowID: id, Row: tup})
	return nil
}

// Scan invokes fn for every row in ascending RowID order until fn returns
// false. The iteration observes a consistent snapshot taken at call time.
func (t *Table) Scan(fn func(RowID, value.Tuple) bool) {
	t.mu.RLock()
	ids := make([]RowID, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	snap := make([]value.Tuple, len(ids))
	for i, id := range ids {
		snap[i] = t.rows[id]
	}
	t.mu.RUnlock()
	for i, id := range ids {
		if !fn(id, snap[i]) {
			return
		}
	}
}

// LookupEq returns the IDs of rows whose projection on cols equals key. It
// uses a matching hash index when one exists and falls back to a scan
// otherwise. Results are in ascending RowID order.
func (t *Table) LookupEq(cols []int, key value.Tuple) []RowID {
	return t.LookupEqAppend(nil, cols, key)
}

// LookupEqAppend is LookupEq appending into dst (reused from length 0), so
// repeated probes — the matcher runs one per search node — can share one
// buffer. The index probe builds its key on the stack and allocates nothing
// beyond dst growth.
func (t *Table) LookupEqAppend(dst []RowID, cols []int, key value.Tuple) []RowID {
	var nb [32]byte
	t.mu.RLock()
	// Primary-key point probe: an equality on exactly the PK columns is one
	// alloc-free map lookup — the classic OLTP point query.
	if t.pk != nil && slices.Equal(cols, t.pkCols) {
		var kb [64]byte
		id, ok := t.pk[string(key.AppendKey(kb[:0]))]
		t.mu.RUnlock()
		if ok {
			dst = append(dst, id)
		}
		return dst
	}
	if ix, ok := t.indexes[string(appendIndexName(nb[:0], cols))]; ok {
		var kb [64]byte
		set := ix.m[string(key.AppendKey(kb[:0]))]
		start := len(dst)
		for id := range set {
			dst = append(dst, id)
		}
		t.mu.RUnlock()
		tail := dst[start:]
		slices.Sort(tail)
		return dst
	}
	t.mu.RUnlock()
	t.Scan(func(id RowID, row value.Tuple) bool {
		if row.Project(cols).Equal(key) {
			dst = append(dst, id)
		}
		return true
	})
	return dst
}

// LookupPK returns the row matching the primary key tuple, if any.
func (t *Table) LookupPK(key value.Tuple) (RowID, value.Tuple, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pk == nil {
		return 0, nil, false
	}
	id, ok := t.pk[key.Key()]
	if !ok {
		return 0, nil, false
	}
	return id, t.rows[id].Clone(), true
}

// All returns a snapshot of every row, in ascending RowID order.
func (t *Table) All() []value.Tuple {
	var out []value.Tuple
	t.Scan(func(_ RowID, row value.Tuple) bool {
		out = append(out, row)
		return true
	})
	return out
}
