// Package storage implements the in-memory relational storage engine that
// Youtopia's execution engine and coordination component read and write.
//
// It provides named tables with typed schemas, optional primary keys, hash
// indexes for equality lookups, and multi-version concurrency control:
// every row is a chain of timestamped versions (see mvcc.go), so readers
// resolve a consistent snapshot without blocking writers and writers never
// block readers. Transactional semantics — write locking, undo, snapshot
// pinning, first-committer-wins retry — are layered on top by package txn;
// the storage layer guarantees that individual operations are atomic, that
// snapshot reads are repeatable, and that a Writer's commit is atomic across
// every row and table it touched.
package storage

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/value"
)

// RowID identifies a row within a table for the lifetime of the table. IDs
// are never reused.
type RowID uint64

// ErrNotFound is returned when a row or table does not exist.
var ErrNotFound = errors.New("storage: not found")

// ErrDuplicateKey is returned when an insert or update would violate the
// table's primary key.
var ErrDuplicateKey = errors.New("storage: duplicate primary key")

// Table is a heap of tuple version chains with a schema, optional primary
// key, and hash indexes. All methods are safe for concurrent use.
type Table struct {
	name   string
	schema *value.Schema
	log    *logState // shared with the owning catalog; nil when standalone

	// clock/conflicts point into the owning catalog; standalone tables (no
	// catalog) get private ones so auto-commit stamping still works.
	clock     *atomic.Uint64
	conflicts *atomic.Uint64

	// heap, when non-nil, makes the table spillable: committed tuples page
	// out to this heap file through the catalog's buffer pool and versions
	// hold a pageRef instead of the tuple (see mvcc.go). Standalone and
	// policy-pinned tables keep it nil. Written under mu (Create before
	// publication, detachHeap); read under mu.
	heap *heapFile

	mu      sync.RWMutex
	rows    map[RowID]*version // head (newest) of each row's version chain
	nextID  RowID
	pkCols  []int      // primary key column offsets, nil if none
	pk      *hashIndex // over pkCols; like all indexes it covers every version
	indexes map[string]*hashIndex
	ordered map[int]*orderedIndex // column offset → ordered index
	version uint64                // bumped on every mutation; used for cheap change detection
	// live estimates the number of rows occupying the table: +1 on
	// insert/restore, -1 on delete, unchanged by update. In-flight writers are
	// included (their undo flows back through the same mutation paths), so the
	// counter tracks Len() without the O(rows) walk — the planner's row-count
	// statistic.
	live int
}

// hashIndex maps the key of a column projection to the rows holding it in
// ANY version: entries are added when a version carrying the key appears and
// removed only when garbage collection prunes the last version carrying it.
// Probes therefore re-resolve each candidate against the read snapshot and
// verify the visible version still matches the key.
type hashIndex struct {
	cols []int
	name string // user-assigned index name, "" when unnamed
	m    map[string]map[RowID]struct{}
}

func newHashIndex(cols []int) *hashIndex {
	return &hashIndex{cols: cols, m: make(map[string]map[RowID]struct{})}
}

// appendKey renders the projection's key for the row into b — no
// intermediate Project tuple; index maintenance runs on every insert/update.
func (ix *hashIndex) appendKey(b []byte, t value.Tuple) []byte {
	for i, c := range ix.cols {
		if i > 0 {
			b = append(b, '|')
		}
		b = t[c].AppendKey(b)
	}
	return b
}

func (ix *hashIndex) key(t value.Tuple) string {
	var kb [64]byte
	return string(ix.appendKey(kb[:0], t))
}

// keyMatches reports whether the row's projection renders exactly k,
// building the candidate key on the stack (comparison allocates nothing).
func (ix *hashIndex) keyMatches(t value.Tuple, k string) bool {
	var kb [64]byte
	return string(ix.appendKey(kb[:0], t)) == k
}

// add is idempotent: a row whose versions share the key is recorded once.
func (ix *hashIndex) add(id RowID, t value.Tuple) {
	k := ix.key(t)
	s := ix.m[k]
	if s == nil {
		s = make(map[RowID]struct{})
		ix.m[k] = s
	}
	s[id] = struct{}{}
}

// removeKey drops id from the key's entry; GC calls it once no version of
// the row carries the key anymore.
func (ix *hashIndex) removeKey(k string, id RowID) {
	if s := ix.m[k]; s != nil {
		delete(s, id)
		if len(s) == 0 {
			delete(ix.m, k)
		}
	}
}

// NewTable creates a table with the given schema. pkCols, if non-empty, names
// columns forming a primary key (uniqueness-enforced and auto-indexed).
func NewTable(name string, schema *value.Schema, pkCols ...string) (*Table, error) {
	t := &Table{
		name:      name,
		schema:    schema,
		rows:      make(map[RowID]*version),
		nextID:    1,
		indexes:   make(map[string]*hashIndex),
		clock:     new(atomic.Uint64),
		conflicts: new(atomic.Uint64),
	}
	for _, c := range pkCols {
		o := schema.Ordinal(c)
		if o < 0 {
			return nil, fmt.Errorf("storage: table %s: unknown primary key column %q", name, c)
		}
		t.pkCols = append(t.pkCols, o)
	}
	if len(t.pkCols) > 0 {
		t.pk = newHashIndex(t.pkCols)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema. The schema is immutable after creation.
func (t *Table) Schema() *value.Schema { return t.schema }

// Version returns a counter bumped on every mutation (and on every commit
// that touched the table, when changes become visible). The coordination
// component uses it to detect base-table changes that may unblock pending
// entangled queries.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// Len returns the number of rows visible to the latest committed state.
func (t *Table) Len() int { return t.LenAt(Latest()) }

// LenAt returns the number of rows visible at the snapshot.
func (t *Table) LenAt(s Snapshot) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, h := range t.rows {
		if visibleVersion(h, s) != nil {
			n++
		}
	}
	return n
}

// VersionStats returns the number of version chains and total stored
// versions (live plus garbage not yet collected) — the MVCC debugging
// counters surfaced in the admin state dump.
func (t *Table) VersionStats() (chains, versions int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, h := range t.rows {
		chains++
		for v := h; v != nil; v = v.prev {
			versions++
		}
	}
	return
}

// CreateIndex builds (or reuses) an unnamed hash index on the given columns.
func (t *Table) CreateIndex(cols ...string) error {
	return t.CreateIndexNamed("", cols...)
}

// CreateIndexNamed builds (or reuses) a hash index on the given columns under
// a user-assigned name. An existing index on the same columns is reused; a
// previously unnamed one adopts the name so WAL replay converges on the final
// name.
func (t *Table) CreateIndexNamed(name string, cols ...string) error {
	offs := make([]int, len(cols))
	for i, c := range cols {
		o := t.schema.Ordinal(c)
		if o < 0 {
			return fmt.Errorf("storage: table %s: unknown index column %q", t.name, c)
		}
		offs[i] = o
	}
	key := indexName(offs)
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, ok := t.indexes[key]; ok {
		if name != "" && ix.name == "" {
			ix.name = name
			t.log.emit(LogRecord{Op: OpCreateIndex, Table: t.name, Cols: cols, Index: name})
		}
		return nil
	}
	ix := newHashIndex(offs)
	ix.name = name
	for id, h := range t.rows {
		for v := h; v != nil; v = v.prev {
			ix.add(id, t.tupleOf(v)) // cover every version so old snapshots probe correctly
		}
	}
	t.indexes[key] = ix
	t.log.emit(LogRecord{Op: OpCreateIndex, Table: t.name, Cols: cols, Index: name})
	return nil
}

// PrimaryKey returns the names of the primary key columns (nil if none).
func (t *Table) PrimaryKey() []string {
	var names []string
	for _, o := range t.pkCols {
		names = append(names, t.schema.Columns[o].Name)
	}
	return names
}

// Indexes returns the column-name lists of the table's hash indexes, in
// deterministic order.
func (t *Table) Indexes() [][]string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	keys := make([]string, 0, len(t.indexes))
	for k := range t.indexes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		ix := t.indexes[k]
		names := make([]string, len(ix.cols))
		for i, o := range ix.cols {
			names[i] = t.schema.Columns[o].Name
		}
		out = append(out, names)
	}
	return out
}

// HasIndex reports whether an index exists on exactly the given column offsets.
func (t *Table) HasIndex(cols []int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[indexName(cols)]
	return ok
}

func indexName(offs []int) string {
	var b [32]byte
	return string(appendIndexName(b[:0], offs))
}

// appendIndexName writes the index map key for offs into b; probing
// t.indexes with string(appendIndexName(stack, offs)) does not allocate.
func appendIndexName(b []byte, offs []int) []byte {
	for _, o := range offs {
		b = append(b, 'c')
		b = strconv.AppendInt(b, int64(o), 10)
		b = append(b, ',')
	}
	return b
}

// tupleOf resolves a version's tuple: the resident one, or a transient
// decode of its spilled record. Caller holds t.mu (shared suffices — the
// heap and pool synchronize internally and the result is not cached).
func (t *Table) tupleOf(v *version) value.Tuple {
	if v.tup != nil {
		return v.tup
	}
	return heapMustLoad(t.heap, v.ref)
}

// materialize loads a spilled version's tuple back into memory — the
// write-path half of the spill contract: a version about to be superseded
// (update/delete need its old tuple) rejoins the in-memory chain. The heap
// slot it occupied is dead from that point on (tup only transitions
// nil→non-nil), so the heap's reclamation accounting hears about it here.
// Caller holds t.mu exclusively.
func (t *Table) materialize(v *version) {
	if v.tup == nil {
		v.tup = heapMustLoad(t.heap, v.ref)
		t.heap.slotDied(v.ref.page)
	}
}

// newVersion builds the version holding a validated tuple: spillable tables
// page the tuple out and keep only the ref; pinned tables (and oversized
// tuples, or a heap hitting an I/O error) keep a resident clone. Caller
// holds t.mu exclusively.
func (t *Table) newVersion(id RowID, tup value.Tuple) *version {
	if t.heap != nil {
		if ref, err := t.heap.place(id, tup); err == nil {
			return &version{ref: ref, end: liveTS}
		}
		// ErrTupleTooLarge or an I/O failure: degrade to resident storage
		// rather than failing the write — the WAL still records it.
	}
	return &version{tup: tup.Clone(), end: liveTS}
}

// headLive reports whether the chain head currently occupies its primary-key
// slot from w's point of view: not deleted by a committed transaction, not
// deleted by w itself. Caller holds t.mu.
func headLive(h *version, w *Writer) bool {
	if ew := h.ew; ew != nil {
		if ew == w {
			return false // deleted by the asking writer: slot is free for it
		}
		return ew.state.Load() == 0 // someone's in-flight delete still holds the slot
	}
	return h.end == liveTS
}

// pkOccupied reports whether primary-key k is currently taken by a live row
// other than skip. Caller holds t.mu.
func (t *Table) pkOccupied(k string, w *Writer, skip RowID) bool {
	for id := range t.pk.m[k] {
		if id == skip {
			continue
		}
		h := t.rows[id]
		if h == nil || !t.pk.keyMatches(t.tupleOf(h), k) {
			continue // an older version carried k; the current head does not
		}
		if headLive(h, w) {
			return true
		}
	}
	return false
}

// writeHead locates the writable chain head for id on behalf of w (nil for
// auto-commit), enforcing first-committer-wins: if the newest committed
// change to the row is younger than w's snapshot, the write conflicts and
// the transaction must abort. Caller holds t.mu.
func (t *Table) writeHead(w *Writer, id RowID) (*version, error) {
	h := t.rows[id]
	if h == nil {
		return nil, fmt.Errorf("%w: row %d in %s", ErrNotFound, id, t.name)
	}
	if bw := h.bw; bw != nil && bw != w {
		ts := bw.state.Load()
		if ts == 0 || (w != nil && ts > w.snap) {
			return nil, t.conflictErr(id)
		}
	} else if h.bw == nil && w != nil && h.begin > w.snap {
		return nil, t.conflictErr(id)
	}
	if ew := h.ew; ew != nil {
		if ew == w {
			return nil, fmt.Errorf("%w: row %d in %s", ErrNotFound, id, t.name)
		}
		ts := ew.state.Load()
		if ts == 0 || (w != nil && ts > w.snap) {
			return nil, t.conflictErr(id)
		}
		return nil, fmt.Errorf("%w: row %d in %s", ErrNotFound, id, t.name)
	}
	if h.end != liveTS {
		if w != nil && h.end > w.snap {
			return nil, t.conflictErr(id)
		}
		return nil, fmt.Errorf("%w: row %d in %s", ErrNotFound, id, t.name)
	}
	return h, nil
}

func (t *Table) conflictErr(id RowID) error {
	t.conflicts.Add(1)
	return fmt.Errorf("%w: row %d in %s", ErrWriteConflict, id, t.name)
}

// Insert validates and appends a tuple as an auto-committed version,
// returning its RowID.
func (t *Table) Insert(tup value.Tuple) (RowID, error) { return t.insert(nil, tup) }

// InsertW is Insert on behalf of an in-flight writer: the new version stays
// invisible to other snapshots until the writer commits.
func (t *Table) InsertW(w *Writer, tup value.Tuple) (RowID, error) { return t.insert(w, tup) }

func (t *Table) insert(w *Writer, tup value.Tuple) (RowID, error) {
	tup, err := t.schema.Validate(tup)
	if err != nil {
		return 0, fmt.Errorf("storage: insert into %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pk != nil {
		var kb [64]byte
		k := string(t.pk.appendKey(kb[:0], tup))
		if t.pkOccupied(k, w, 0) {
			return 0, fmt.Errorf("%w: %s in %s", ErrDuplicateKey, tup.Project(t.pkCols), t.name)
		}
	}
	id := t.nextID
	t.nextID++
	v := t.newVersion(id, tup)
	if w == nil {
		v.begin = t.clock.Add(1)
	} else {
		v.bw = w
		w.touch(t, v)
	}
	t.rows[id] = v
	t.addKeys(id, tup)
	t.version++
	t.live++
	t.log.emit(LogRecord{Op: OpInsert, Table: t.name, RowID: id, Row: tup, Txn: txnID(w)})
	return id, nil
}

// addKeys records the version's keys in the primary key and every index.
// Caller holds t.mu.
func (t *Table) addKeys(id RowID, tup value.Tuple) {
	if t.pk != nil {
		t.pk.add(id, tup)
	}
	for _, ix := range t.indexes {
		ix.add(id, tup)
	}
	for _, ox := range t.ordered {
		ox.add(id, tup)
	}
}

// Get returns the tuple stored under id in the latest committed state.
func (t *Table) Get(id RowID) (value.Tuple, error) { return t.GetAt(Latest(), id) }

// GetAt returns a copy of the version of id visible at the snapshot.
func (t *Table) GetAt(s Snapshot, id RowID) (value.Tuple, error) {
	row, ok := t.GetRefAt(s, id)
	if !ok {
		return nil, fmt.Errorf("%w: row %d in %s", ErrNotFound, id, t.name)
	}
	return row.Clone(), nil
}

// GetRef returns the latest committed row WITHOUT copying, like Scan does
// for its callback. Versions are immutable once written, so the reference
// stays valid and race-free; the caller must not modify the returned tuple.
// This is the zero-copy read the matcher uses when probing installed answers
// at every search node.
func (t *Table) GetRef(id RowID) (value.Tuple, bool) { return t.GetRefAt(Latest(), id) }

// GetRefAt is GetRef against a snapshot: the read resolves the version chain
// lock-free with respect to writers (only the table's short structural
// latch is taken) and never observes uncommitted data.
func (t *Table) GetRefAt(s Snapshot, id RowID) (value.Tuple, bool) {
	t.mu.RLock()
	v := visibleVersion(t.rows[id], s)
	var tup value.Tuple
	var ref pageRef
	var h *heapFile
	if v != nil {
		// Capture under the latch: tup only ever transitions nil→non-nil
		// (materialize) and ref/heap pointers captured together with a nil
		// tup are guaranteed still-loadable (retired heaps stay readable).
		// Entering the readers gate BEFORE releasing the latch keeps the
		// ref's page from being reclaimed and reused while we decode.
		tup, ref = v.tup, v.ref
		if tup == nil {
			h = t.heap
			h.readers.Add(1)
		}
	}
	t.mu.RUnlock()
	if v == nil {
		return nil, false
	}
	if tup == nil {
		tup = heapMustLoad(h, ref) // spilled: decode outside the latch
		h.readers.Add(-1)
	}
	return tup, true
}

// Delete removes the row with the given id (auto-commit) and returns the
// removed tuple (so callers such as the transaction undo log can restore it).
func (t *Table) Delete(id RowID) (value.Tuple, error) { return t.delete(nil, id) }

// DeleteW is Delete on behalf of an in-flight writer.
func (t *Table) DeleteW(w *Writer, id RowID) (value.Tuple, error) { return t.delete(w, id) }

func (t *Table) delete(w *Writer, id RowID) (value.Tuple, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, err := t.writeHead(w, id)
	if err != nil {
		return nil, err
	}
	t.materialize(h) // the deleted tuple rejoins the chain (undo, return value)
	if w == nil {
		h.end = t.clock.Add(1)
	} else {
		h.ew = w
		w.touch(t, h)
	}
	t.version++
	t.live--
	t.log.emit(LogRecord{Op: OpDelete, Table: t.name, RowID: id, Txn: txnID(w)})
	return h.tup, nil
}

// Update replaces the tuple stored under id and returns the previous tuple.
func (t *Table) Update(id RowID, tup value.Tuple) (value.Tuple, error) { return t.update(nil, id, tup) }

// UpdateW is Update on behalf of an in-flight writer.
func (t *Table) UpdateW(w *Writer, id RowID, tup value.Tuple) (value.Tuple, error) {
	return t.update(w, id, tup)
}

func (t *Table) update(w *Writer, id RowID, tup value.Tuple) (value.Tuple, error) {
	tup, err := t.schema.Validate(tup)
	if err != nil {
		return nil, fmt.Errorf("storage: update %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h, err := t.writeHead(w, id)
	if err != nil {
		return nil, err
	}
	t.materialize(h) // superseded version rejoins the in-memory chain
	if t.pk != nil {
		var ob, nb [64]byte
		oldK := string(t.pk.appendKey(ob[:0], h.tup))
		newK := string(t.pk.appendKey(nb[:0], tup))
		if oldK != newK && t.pkOccupied(newK, w, id) {
			return nil, fmt.Errorf("%w: %s in %s", ErrDuplicateKey, tup.Project(t.pkCols), t.name)
		}
	}
	v := t.newVersion(id, tup)
	v.prev = h
	if w == nil {
		ts := t.clock.Add(1)
		v.begin = ts
		h.end = ts
	} else {
		v.bw = w
		h.ew = w
		w.touch(t, v)
		w.touch(t, h)
	}
	t.rows[id] = v
	t.addKeys(id, tup) // old version keys stay until GC prunes the version
	t.version++
	t.log.emit(LogRecord{Op: OpUpdate, Table: t.name, RowID: id, Row: tup, Txn: txnID(w)})
	return h.tup, nil
}

// RestoreAt reinserts a tuple under a specific RowID; the transaction undo
// log uses it to reverse a Delete, and WAL replay uses it to reproduce
// original RowIDs. The id must not be live.
func (t *Table) RestoreAt(id RowID, tup value.Tuple) error { return t.restoreAt(nil, id, tup) }

// RestoreAtW is RestoreAt on behalf of an in-flight writer (the undo path of
// a transaction that deleted the row earlier).
func (t *Table) RestoreAtW(w *Writer, id RowID, tup value.Tuple) error {
	return t.restoreAt(w, id, tup)
}

func (t *Table) restoreAt(w *Writer, id RowID, tup value.Tuple) error {
	tup, err := t.schema.Validate(tup)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.rows[id]
	if h != nil && (headLive(h, w) || (w != nil && h.bw == w && h.ew != w)) {
		return fmt.Errorf("storage: RestoreAt: row %d already live in %s", id, t.name)
	}
	v := t.newVersion(id, tup)
	v.prev = h
	if w == nil {
		v.begin = t.clock.Add(1)
	} else {
		v.bw = w
		w.touch(t, v)
	}
	t.rows[id] = v
	t.addKeys(id, tup)
	if id >= t.nextID {
		t.nextID = id + 1
	}
	t.version++
	t.live++
	t.log.emit(LogRecord{Op: OpRestore, Table: t.name, RowID: id, Row: tup, Txn: txnID(w)})
	return nil
}

// Scan invokes fn for every row in the latest committed state in ascending
// RowID order until fn returns false.
func (t *Table) Scan(fn func(RowID, value.Tuple) bool) { t.ScanAt(Latest(), fn) }

// ScanAt is Scan against a snapshot. The visible rows are collected under
// the table's shared latch FIRST and the callback runs entirely outside it,
// so a slow consumer never blocks writers (or other readers) and the
// iteration still observes exactly the snapshot's consistent state. For
// spillable tables only the page refs are captured under the latch; the
// tuples themselves are decoded through the buffer pool after it is
// released, so a cold scan's page I/O never blocks writers either.
func (t *Table) ScanAt(s Snapshot, fn func(RowID, value.Tuple) bool) {
	t.mu.RLock()
	ids := make([]RowID, 0, len(t.rows))
	for id, h := range t.rows {
		if visibleVersion(h, s) != nil {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	snap := make([]value.Tuple, len(ids))
	var refs []pageRef
	heap := t.heap
	for i, id := range ids {
		v := visibleVersion(t.rows[id], s)
		snap[i] = v.tup
		if v.tup == nil {
			if refs == nil {
				// Spilled refs captured: enter the heap's readers gate while
				// still under the latch, so no captured page is reclaimed
				// and reused before the decode loop below resolves it.
				refs = make([]pageRef, len(ids))
				heap.readers.Add(1)
			}
			refs[i] = v.ref
		}
	}
	t.mu.RUnlock()
	if refs != nil {
		defer heap.readers.Add(-1)
	}
	for i, id := range ids {
		if snap[i] == nil {
			snap[i] = heapMustLoad(heap, refs[i])
		}
		if !fn(id, snap[i]) {
			return
		}
	}
}

// StreamAt invokes fn for every row visible at s in ascending RowID order
// while retaining O(1) tuples at a time: each row is re-resolved under a
// fresh shared latch and spilled tuples are decoded one by one through the
// buffer pool. Unlike ScanAt — which captures the whole visible set under
// one latch and therefore holds every decoded tuple of the snapshot at once
// — StreamAt's cut is only consistent on a quiescent table: a row mutated
// between the per-row latches may be observed newer than s. The WAL
// compaction scratch (quiescent by construction) uses it to write snapshot
// segments of larger-than-RAM tables in O(pool) memory.
func (t *Table) StreamAt(s Snapshot, fn func(RowID, value.Tuple) bool) {
	t.mu.RLock()
	ids := make([]RowID, 0, len(t.rows))
	for id, h := range t.rows {
		if visibleVersion(h, s) != nil {
			ids = append(ids, id)
		}
	}
	t.mu.RUnlock()
	slices.Sort(ids)
	for _, id := range ids {
		t.mu.RLock()
		v := visibleVersion(t.rows[id], s)
		var tup value.Tuple
		var ref pageRef
		var h *heapFile
		if v != nil {
			tup, ref = v.tup, v.ref
			if tup == nil {
				h = t.heap
				h.readers.Add(1)
			}
		}
		t.mu.RUnlock()
		if v == nil {
			continue // pruned since the id pass; only possible non-quiescent
		}
		if tup == nil {
			tup = heapMustLoad(h, ref)
			h.readers.Add(-1)
		}
		if !fn(id, tup) {
			return
		}
	}
}

// LookupEq returns the IDs of rows whose projection on cols equals key in
// the latest committed state. It uses a matching hash index when one exists
// and falls back to a scan otherwise. Results are in ascending RowID order.
func (t *Table) LookupEq(cols []int, key value.Tuple) []RowID {
	return t.LookupEqAppendAt(Latest(), nil, cols, key)
}

// LookupEqAppend is LookupEq appending into dst (reused from length 0), so
// repeated probes — the matcher runs one per search node — can share one
// buffer.
func (t *Table) LookupEqAppend(dst []RowID, cols []int, key value.Tuple) []RowID {
	return t.LookupEqAppendAt(Latest(), dst, cols, key)
}

// LookupEqAppendAt is the snapshot-visible equality probe. The index probe
// builds its key on the stack and allocates nothing beyond dst growth; each
// candidate is resolved against the snapshot and re-verified against the key
// (index entries cover every version of a row, so a candidate's visible
// version may carry a different value).
func (t *Table) LookupEqAppendAt(s Snapshot, dst []RowID, cols []int, key value.Tuple) []RowID {
	var nb [32]byte
	t.mu.RLock()
	// Primary-key point probe: an equality on exactly the PK columns probes
	// the PK index — the classic OLTP point query.
	ix := t.pk
	if ix == nil || !slices.Equal(cols, t.pkCols) {
		ix = t.indexes[string(appendIndexName(nb[:0], cols))]
	}
	if ix != nil {
		var kb [64]byte
		k := string(key.AppendKey(kb[:0]))
		start := len(dst)
		for id := range ix.m[k] {
			if v := visibleVersion(t.rows[id], s); v != nil && ix.keyMatches(t.tupleOf(v), k) {
				dst = append(dst, id)
			}
		}
		t.mu.RUnlock()
		tail := dst[start:]
		slices.Sort(tail)
		return dst
	}
	t.mu.RUnlock()
	t.ScanAt(s, func(id RowID, row value.Tuple) bool {
		if row.Project(cols).Equal(key) {
			dst = append(dst, id)
		}
		return true
	})
	return dst
}

// LookupPK returns the row matching the primary key tuple in the latest
// committed state, if any.
func (t *Table) LookupPK(key value.Tuple) (RowID, value.Tuple, bool) {
	return t.LookupPKAt(Latest(), key)
}

// LookupPKAt is LookupPK against a snapshot. At most one row is visible per
// key at any snapshot (uniqueness holds at every instant), so the first
// visible match wins.
func (t *Table) LookupPKAt(s Snapshot, key value.Tuple) (RowID, value.Tuple, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pk == nil {
		return 0, nil, false
	}
	var kb [64]byte
	k := string(key.AppendKey(kb[:0]))
	for id := range t.pk.m[k] {
		if v := visibleVersion(t.rows[id], s); v != nil {
			tup := t.tupleOf(v)
			if !t.pk.keyMatches(tup, k) {
				continue
			}
			if v.tup != nil {
				tup = tup.Clone() // spilled decodes are already private copies
			}
			return id, tup, true
		}
	}
	return 0, nil, false
}

// All returns a snapshot of every row in the latest committed state, in
// ascending RowID order.
func (t *Table) All() []value.Tuple {
	var out []value.Tuple
	t.Scan(func(_ RowID, row value.Tuple) bool {
		out = append(out, row)
		return true
	})
	return out
}

// gc prunes the table's version chains against the watermark (the oldest
// snapshot any reader can still hold): versions shadowed by a newer
// committed version that itself began at or before the watermark can never
// be resolved again, and chains whose newest version died at or before it
// disappear entirely. Dead versions (begin == end — an aborted transaction's
// compensated intermediates) are invisible to every snapshot and pruned
// unconditionally. Returns the number of versions reclaimed.
func (t *Table) gc(wm uint64) (reclaimed int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, h := range t.rows {
		if h.bw == nil && h.ew == nil && h.end != liveTS && h.end <= wm {
			// Whole chain dead to every current and future snapshot.
			delete(t.rows, id)
			for v := h; v != nil; v = v.prev {
				t.dropKeys(id, v, nil) // decodes the slot; must precede slotDied
				if v.tup == nil {
					t.heap.slotDied(v.ref.page)
				}
				reclaimed++
			}
			continue
		}
		prev := h
		anchored := h.bw == nil && h.begin <= wm
		for v := h.prev; v != nil; v = v.prev {
			committed := v.bw == nil && v.ew == nil
			dead := committed && v.begin == v.end
			if (anchored && committed) || dead {
				prev.prev = v.prev
				t.dropKeys(id, v, h)
				if v.tup == nil {
					t.heap.slotDied(v.ref.page)
				}
				reclaimed++
				continue
			}
			if committed && v.begin <= wm {
				anchored = true // v stays (visible at wm); everything below goes
			}
			prev = v
		}
	}
	return reclaimed
}

// dropKeys removes the pruned version's index entries unless a surviving
// version of the chain (rooted at head, nil when the chain is gone) still
// carries the same key. Caller holds t.mu.
func (t *Table) dropKeys(id RowID, dead *version, head *version) {
	deadTup := t.tupleOf(dead)
	drop := func(ix *hashIndex) {
		var kb [64]byte
		k := string(ix.appendKey(kb[:0], deadTup))
		for v := head; v != nil; v = v.prev {
			if v != dead && ix.keyMatches(t.tupleOf(v), k) {
				return
			}
		}
		ix.removeKey(k, id)
	}
	if t.pk != nil {
		drop(t.pk)
	}
	for _, ix := range t.indexes {
		drop(ix)
	}
	for _, ox := range t.ordered {
		val := deadTup[ox.col]
		shared := false
		for v := head; v != nil; v = v.prev {
			if v != dead && t.tupleOf(v)[ox.col].Compare(val) == 0 {
				shared = true
				break
			}
		}
		if !shared {
			ox.remove(id, deadTup)
		}
	}
}

// compactHeap rewrites mostly-dead sealed heap pages: every still-live
// spilled version on a victim page (at least half its records dead) is
// re-placed at the current tail, draining the victim to zero live records so
// slotDied moves it to the free list for the tail allocator to reuse.
// Catalog.GC runs it right after chain pruning, so the sweep that killed the
// slots immediately feeds the compactor. Runs under the exclusive latch;
// latchless readers holding refs into a victim are protected by the readers
// gate exactly as for any reclaimed page.
func (t *Table) compactHeap() {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.heap
	if h == nil {
		return
	}
	victims := h.compactionVictims()
	if len(victims) == 0 {
		return
	}
	for id, head := range t.rows {
		for v := head; v != nil; v = v.prev {
			if v.tup != nil || !victims[v.ref.page] {
				continue
			}
			tup, err := h.load(v.ref)
			if err != nil {
				continue // unreadable: leave the slot where it is
			}
			old := v.ref.page
			if ref, perr := h.place(id, tup); perr == nil {
				v.ref = ref
			} else {
				v.tup = tup // cannot re-place (oversized/IO): keep it resident
			}
			h.slotDied(old)
		}
	}
}
