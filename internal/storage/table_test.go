package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func flightsSchema() *value.Schema {
	return value.NewSchema(value.Col("fno", value.TypeInt), value.Col("dest", value.TypeString))
}

// figure1a loads the Flights table exactly as in Figure 1(a) of the paper.
func figure1a(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("Flights", flightsSchema(), "fno")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range [][2]any{{122, "Paris"}, {123, "Paris"}, {134, "Paris"}, {136, "Rome"}} {
		if _, err := tbl.Insert(value.NewTuple(row[0], row[1])); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestInsertGetScan(t *testing.T) {
	tbl := figure1a(t)
	if tbl.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tbl.Len())
	}
	var dests []string
	tbl.Scan(func(_ RowID, row value.Tuple) bool {
		dests = append(dests, row[1].Str())
		return true
	})
	want := []string{"Paris", "Paris", "Paris", "Rome"}
	for i := range want {
		if dests[i] != want[i] {
			t.Errorf("scan order: got %v, want %v", dests, want)
			break
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tbl := figure1a(t)
	n := 0
	tbl.Scan(func(RowID, value.Tuple) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("scan visited %d rows, want 2", n)
	}
}

func TestPrimaryKeyEnforced(t *testing.T) {
	tbl := figure1a(t)
	if _, err := tbl.Insert(value.NewTuple(122, "Rome")); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("duplicate PK: got %v, want ErrDuplicateKey", err)
	}
	id, row, ok := tbl.LookupPK(value.NewTuple(134))
	if !ok || row[1].Str() != "Paris" || id == 0 {
		t.Errorf("LookupPK(134) = %v,%v,%v", id, row, ok)
	}
	if _, _, ok := tbl.LookupPK(value.NewTuple(999)); ok {
		t.Error("LookupPK(999) should miss")
	}
}

func TestUnknownPKColumn(t *testing.T) {
	if _, err := NewTable("x", flightsSchema(), "nosuch"); err == nil {
		t.Error("unknown PK column accepted")
	}
}

func TestDeleteAndRestore(t *testing.T) {
	tbl := figure1a(t)
	ids := tbl.LookupEq([]int{0}, value.NewTuple(136))
	if len(ids) != 1 {
		t.Fatalf("lookup 136: %v", ids)
	}
	old, err := tbl.Delete(ids[0])
	if err != nil || old[1].Str() != "Rome" {
		t.Fatalf("delete: %v, %v", old, err)
	}
	if tbl.Len() != 3 {
		t.Error("len after delete")
	}
	if _, err := tbl.Delete(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	// Undo-log style restore.
	if err := tbl.RestoreAt(ids[0], old); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 4 {
		t.Error("len after restore")
	}
	if err := tbl.RestoreAt(ids[0], old); err == nil {
		t.Error("RestoreAt over live row accepted")
	}
	// PK must be restored too.
	if _, _, ok := tbl.LookupPK(value.NewTuple(136)); !ok {
		t.Error("PK entry not restored")
	}
}

func TestUpdate(t *testing.T) {
	tbl := figure1a(t)
	ids := tbl.LookupEq([]int{0}, value.NewTuple(136))
	old, err := tbl.Update(ids[0], value.NewTuple(136, "Paris"))
	if err != nil || old[1].Str() != "Rome" {
		t.Fatalf("update: %v %v", old, err)
	}
	got, _ := tbl.Get(ids[0])
	if got[1].Str() != "Paris" {
		t.Error("update not applied")
	}
	// PK-changing update into a conflict must fail and leave state intact.
	if _, err := tbl.Update(ids[0], value.NewTuple(122, "Paris")); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("conflicting PK update: %v", err)
	}
	got, _ = tbl.Get(ids[0])
	if got[0].Int() != 136 {
		t.Error("failed update mutated row")
	}
	// PK-changing update to a fresh key works and moves the PK entry.
	if _, err := tbl.Update(ids[0], value.NewTuple(140, "Paris")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tbl.LookupPK(value.NewTuple(136)); ok {
		t.Error("stale PK entry left behind")
	}
	if _, _, ok := tbl.LookupPK(value.NewTuple(140)); !ok {
		t.Error("new PK entry missing")
	}
}

func TestUpdateNotFound(t *testing.T) {
	tbl := figure1a(t)
	if _, err := tbl.Update(9999, value.NewTuple(1, "x")); !errors.Is(err, ErrNotFound) {
		t.Errorf("update missing row: %v", err)
	}
	if _, err := tbl.Get(9999); !errors.Is(err, ErrNotFound) {
		t.Errorf("get missing row: %v", err)
	}
}

func TestInsertValidation(t *testing.T) {
	tbl := figure1a(t)
	if _, err := tbl.Insert(value.NewTuple("oops", "Paris")); err == nil {
		t.Error("type-mismatched insert accepted")
	}
	if _, err := tbl.Insert(value.NewTuple(1)); err == nil {
		t.Error("arity-mismatched insert accepted")
	}
}

func TestIndexLookupMatchesScan(t *testing.T) {
	tbl := figure1a(t)
	scanIDs := tbl.LookupEq([]int{1}, value.NewTuple("Paris")) // no index yet
	if err := tbl.CreateIndex("dest"); err != nil {
		t.Fatal(err)
	}
	if !tbl.HasIndex([]int{1}) {
		t.Fatal("index not registered")
	}
	ixIDs := tbl.LookupEq([]int{1}, value.NewTuple("Paris"))
	if len(scanIDs) != 3 || len(ixIDs) != 3 {
		t.Fatalf("scan=%v index=%v", scanIDs, ixIDs)
	}
	for i := range scanIDs {
		if scanIDs[i] != ixIDs[i] {
			t.Errorf("index and scan disagree: %v vs %v", ixIDs, scanIDs)
		}
	}
}

func TestIndexMaintainedAcrossMutations(t *testing.T) {
	tbl := figure1a(t)
	if err := tbl.CreateIndex("dest"); err != nil {
		t.Fatal(err)
	}
	id, err := tbl.Insert(value.NewTuple(200, "Rome"))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.LookupEq([]int{1}, value.NewTuple("Rome"))); got != 2 {
		t.Errorf("Rome after insert = %d, want 2", got)
	}
	if _, err := tbl.Update(id, value.NewTuple(200, "Paris")); err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.LookupEq([]int{1}, value.NewTuple("Rome"))); got != 1 {
		t.Errorf("Rome after update = %d, want 1", got)
	}
	if got := len(tbl.LookupEq([]int{1}, value.NewTuple("Paris"))); got != 4 {
		t.Errorf("Paris after update = %d, want 4", got)
	}
	if _, err := tbl.Delete(id); err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.LookupEq([]int{1}, value.NewTuple("Paris"))); got != 3 {
		t.Errorf("Paris after delete = %d, want 3", got)
	}
}

func TestCreateIndexIdempotentAndErrors(t *testing.T) {
	tbl := figure1a(t)
	if err := tbl.CreateIndex("dest"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("dest"); err != nil {
		t.Errorf("idempotent CreateIndex failed: %v", err)
	}
	if err := tbl.CreateIndex("nosuch"); err == nil {
		t.Error("index on unknown column accepted")
	}
}

func TestVersionBumps(t *testing.T) {
	tbl := figure1a(t)
	v0 := tbl.Version()
	id, _ := tbl.Insert(value.NewTuple(300, "Oslo"))
	if tbl.Version() == v0 {
		t.Error("version not bumped on insert")
	}
	v1 := tbl.Version()
	tbl.Update(id, value.NewTuple(300, "Bergen"))
	if tbl.Version() == v1 {
		t.Error("version not bumped on update")
	}
	v2 := tbl.Version()
	tbl.Delete(id)
	if tbl.Version() == v2 {
		t.Error("version not bumped on delete")
	}
}

func TestInsertDoesNotAliasCallerTuple(t *testing.T) {
	tbl := figure1a(t)
	tup := value.NewTuple(500, "Lima")
	id, _ := tbl.Insert(tup)
	tup[1] = value.NewString("HACKED")
	got, _ := tbl.Get(id)
	if got[1].Str() != "Lima" {
		t.Error("stored row aliases caller's tuple")
	}
	got[0] = value.NewInt(0)
	got2, _ := tbl.Get(id)
	if got2[0].Int() != 500 {
		t.Error("Get returns aliased row")
	}
}

func TestConcurrentInsertScan(t *testing.T) {
	tbl, err := NewTable("t", flightsSchema())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := tbl.Insert(value.NewTuple(g*1000+i, "Paris")); err != nil {
					t.Error(err)
					return
				}
				tbl.Scan(func(RowID, value.Tuple) bool { return false })
			}
		}(g)
	}
	wg.Wait()
	if tbl.Len() != 800 {
		t.Errorf("Len = %d, want 800", tbl.Len())
	}
}

// Property: for random row sets, indexed lookup equals scan-based lookup.
func TestLookupEqIndexScanEquivalenceProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		noIx, _ := NewTable("a", flightsSchema())
		withIx, _ := NewTable("b", flightsSchema())
		withIx.CreateIndex("dest")
		for i, k := range keys {
			dest := fmt.Sprintf("city%d", k%7)
			noIx.Insert(value.NewTuple(i, dest))
			withIx.Insert(value.NewTuple(i, dest))
		}
		for k := 0; k < 7; k++ {
			key := value.NewTuple(fmt.Sprintf("city%d", k))
			a := noIx.LookupEq([]int{1}, key)
			b := withIx.LookupEq([]int{1}, key)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAll(t *testing.T) {
	tbl := figure1a(t)
	rows := tbl.All()
	if len(rows) != 4 || rows[0][0].Int() != 122 {
		t.Errorf("All() = %v", rows)
	}
}
