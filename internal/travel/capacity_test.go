package travel

import (
	"fmt"
	"testing"
	"time"
)

// TestCapacityExcludesFullFlights: with capacity 2, a second pair cannot
// join the flight the first pair filled and lands on a different one.
func TestCapacityExcludesFullFlights(t *testing.T) {
	s := newService(t)
	f := FlightFilter{Dest: "Paris", Capacity: 2}

	b1, err := s.BookFlight("A1", []string{"A2"}, f)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.BookFlight("A2", []string{"A1"}, f)
	if err != nil {
		t.Fatal(err)
	}
	await(t, b1)
	await(t, b2)
	first, _, _ := b1.Details()

	b3, err := s.BookFlight("B1", []string{"B2"}, f)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := s.BookFlight("B2", []string{"B1"}, f)
	if err != nil {
		t.Fatal(err)
	}
	await(t, b3)
	await(t, b4)
	second, _, _ := b3.Details()

	if first == second {
		t.Errorf("second pair over-booked flight %d beyond capacity 2", first)
	}
}

// TestCapacityExhaustedParksPending: three pairs, capacity 2, three Paris
// flights → all pairs fit; a fourth pair with only full flights parks.
func TestCapacityExhaustion(t *testing.T) {
	s := newService(t)
	f := FlightFilter{Dest: "Paris", Capacity: 2}
	// Fill all three Paris flights (122, 123, 134).
	for p := 0; p < 3; p++ {
		a, b := fmt.Sprintf("p%d_a", p), fmt.Sprintf("p%d_b", p)
		b1, err := s.BookFlight(a, []string{b}, f)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := s.BookFlight(b, []string{a}, f)
		if err != nil {
			t.Fatal(err)
		}
		await(t, b1)
		await(t, b2)
	}
	// Every Paris flight is now at capacity; the fourth pair must park.
	b1, err := s.BookFlight("late_a", []string{"late_b"}, f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BookFlight("late_b", []string{"late_a"}, f); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if b1.Status() != StatusPending {
		t.Errorf("late pair status = %s; capacity should exclude all flights", b1.Status())
	}
	// Distinctness check: exactly 2 travelers per flight.
	counts := map[int64]int{}
	for _, tup := range s.System().Answers().Tuples(RelFlight) {
		counts[tup[1].Int()]++
	}
	for fno, n := range counts {
		if n != 2 {
			t.Errorf("flight %d has %d travelers, want 2", fno, n)
		}
	}
}

// TestGroupLargerThanCapacityNeverMatches: a 3-group with capacity 2 is
// unmatchable by construction.
func TestGroupLargerThanCapacityNeverMatches(t *testing.T) {
	s := newService(t)
	f := FlightFilter{Dest: "Paris", Capacity: 2}
	group := []string{"G1", "G2", "G3"}
	var bookings []*Booking
	for i, self := range group {
		var friends []string
		for j, o := range group {
			if j != i {
				friends = append(friends, o)
			}
		}
		b, err := s.BookFlight(self, friends, f)
		if err != nil {
			t.Fatal(err)
		}
		bookings = append(bookings, b)
	}
	time.Sleep(30 * time.Millisecond)
	for _, b := range bookings {
		if b.Status() != StatusPending {
			t.Errorf("%s status = %s, want pending forever", b.User, b.Status())
		}
	}
}

// TestCapacityCountsDirectBookings: direct (uncoordinated) bookings consume
// capacity too, since they land in the same answer relation.
func TestCapacityCountsDirectBookings(t *testing.T) {
	s := newService(t)
	// Two direct bookings fill flight 122 (capacity 2).
	for _, u := range []string{"D1", "D2"} {
		b, err := s.BookDirect(u, 122)
		if err != nil {
			t.Fatal(err)
		}
		await(t, b)
	}
	f := FlightFilter{Dest: "Paris", Capacity: 2}
	b1, _ := s.BookFlight("C1", []string{"C2"}, f)
	b2, _ := s.BookFlight("C2", []string{"C1"}, f)
	await(t, b1)
	await(t, b2)
	got, _, _ := b1.Details()
	if got == 122 {
		t.Error("coordinated pair landed on the full flight 122")
	}
}
