package travel

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// NewHTTPHandler exposes the travel middle tier as the JSON API behind the
// demo's browser front end (the three-tier architecture of §2.2: browser →
// middle tier → Youtopia). Endpoints:
//
//	GET  /                       tiny HTML front end
//	GET  /api/friends?user=U     friend list (Figure 3)
//	POST /api/befriend           {"a": "...", "b": "..."}
//	GET  /api/flights?user=U&dest=D[&maxprice=P]   search + friends' bookings (Figure 4)
//	POST /api/book               booking request (see bookRequest)
//	GET  /api/account?user=U     pending/confirmed reservations
//	GET  /api/inbox?user=U       notification messages
//	GET  /api/admin/state        coordination-component dump (admin interface)
//	GET  /api/admin/graph        entanglement graph in Graphviz DOT
func NewHTTPHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, indexHTML)
	})
	mux.HandleFunc("/api/friends", func(w http.ResponseWriter, r *http.Request) {
		user := r.URL.Query().Get("user")
		if user == "" {
			httpErr(w, http.StatusBadRequest, "missing user")
			return
		}
		writeJSON(w, map[string]any{"user": user, "friends": s.Friends(user)})
	})
	mux.HandleFunc("/api/befriend", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		var req struct{ A, B string }
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.A == "" || req.B == "" {
			httpErr(w, http.StatusBadRequest, "need {a, b}")
			return
		}
		s.Befriend(req.A, req.B)
		writeJSON(w, map[string]any{"ok": true})
	})
	mux.HandleFunc("/api/flights", func(w http.ResponseWriter, r *http.Request) {
		user := r.URL.Query().Get("user")
		dest := r.URL.Query().Get("dest")
		if dest == "" {
			httpErr(w, http.StatusBadRequest, "missing dest")
			return
		}
		f := FlightFilter{Dest: dest}
		if mp := r.URL.Query().Get("maxprice"); mp != "" {
			v, err := strconv.ParseFloat(mp, 64)
			if err != nil {
				httpErr(w, http.StatusBadRequest, "bad maxprice")
				return
			}
			f.MaxPrice = v
		}
		flights, err := s.SearchFlightsWithFriends(user, f)
		if err != nil {
			httpErr(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, flights)
	})
	mux.HandleFunc("/api/book", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		var req bookRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpErr(w, http.StatusBadRequest, err.Error())
			return
		}
		b, err := dispatchBooking(s, req)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err.Error())
			return
		}
		// Give immediate matches a moment to resolve so the common "partner
		// already waiting" case returns confirmed synchronously.
		select {
		case <-b.Done():
		case <-time.After(50 * time.Millisecond):
		}
		writeJSON(w, bookingJSON(b))
	})
	mux.HandleFunc("/api/account", func(w http.ResponseWriter, r *http.Request) {
		user := r.URL.Query().Get("user")
		entries := s.Account(user)
		out := make([]map[string]any, len(entries))
		for i, e := range entries {
			out[i] = bookingJSON(e.Booking)
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/api/inbox", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Inbox(r.URL.Query().Get("user")))
	})
	mux.HandleFunc("/api/admin/state", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.System().Coordinator().DumpState())
	})
	mux.HandleFunc("/api/admin/graph", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
		fmt.Fprint(w, s.System().Coordinator().DOT())
	})
	mux.HandleFunc("/api/admin/diagnose", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "bad id")
			return
		}
		d, ok := s.System().Coordinator().Diagnose(id)
		if !ok {
			httpErr(w, http.StatusNotFound, fmt.Sprintf("q%d is not pending", id))
			return
		}
		writeJSON(w, d)
	})
	return mux
}

// bookRequest is the JSON body of POST /api/book.
type bookRequest struct {
	User    string   `json:"user"`
	Kind    string   `json:"kind"` // flight | trip | seat | direct
	Friends []string `json:"friends"`
	Dest    string   `json:"dest"`
	City    string   `json:"city"` // hotel city for trips (defaults to Dest)
	MaxP    float64  `json:"maxprice"`
	Fno     int64    `json:"fno"` // for kind=direct
}

func dispatchBooking(s *Service, req bookRequest) (*Booking, error) {
	if req.User == "" {
		return nil, fmt.Errorf("missing user")
	}
	f := FlightFilter{Dest: req.Dest, MaxPrice: req.MaxP}
	switch req.Kind {
	case "flight", "":
		if req.Dest == "" {
			return nil, fmt.Errorf("missing dest")
		}
		return s.BookFlight(req.User, req.Friends, f)
	case "trip":
		if req.Dest == "" {
			return nil, fmt.Errorf("missing dest")
		}
		city := req.City
		if city == "" {
			city = req.Dest
		}
		return s.BookTrip(req.User, req.Friends, f, HotelFilter{City: city, MaxPrice: req.MaxP})
	case "seat":
		if len(req.Friends) != 1 {
			return nil, fmt.Errorf("seat booking needs exactly one friend")
		}
		return s.BookAdjacentSeat(req.User, req.Friends[0], f)
	case "direct":
		if req.Fno == 0 {
			return nil, fmt.Errorf("missing fno")
		}
		return s.BookDirect(req.User, req.Fno)
	default:
		return nil, fmt.Errorf("unknown kind %q", req.Kind)
	}
}

func bookingJSON(b *Booking) map[string]any {
	flight, hotel, seat := b.Details()
	return map[string]any{
		"id": b.ID, "user": b.User, "kind": b.Kind, "friends": b.Friends,
		"status": string(b.Status()), "flight": flight, "hotel": hotel, "seat": seat,
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func httpErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck
}

const indexHTML = `<!doctype html>
<html><head><title>Youtopia Travel</title>
<style>body{font-family:sans-serif;margin:2em;max-width:50em}</style></head>
<body>
<h1>Youtopia travel demo</h1>
<p>This is the browser tier of the three-tier demo application. Use the JSON
API (<code>/api/...</code>) or the quick form below.</p>
<h2>Coordinate a flight</h2>
<form onsubmit="book(event)">
  <label>You: <input id=user value="Jerry"></label>
  <label>Friend: <input id=friend value="Kramer"></label>
  <label>Destination: <input id=dest value="Paris"></label>
  <button>Book together</button>
</form>
<pre id=out></pre>
<script>
async function book(e){
  e.preventDefault();
  const body={user:user.value,kind:"flight",friends:[friend.value],dest:dest.value};
  const r=await fetch("/api/book",{method:"POST",body:JSON.stringify(body)});
  out.textContent=JSON.stringify(await r.json(),null,2);
}
</script>
</body></html>
`
