package travel

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := newService(t)
	srv := httptest.NewServer(NewHTTPHandler(s))
	t.Cleanup(srv.Close)
	return s, srv
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp
}

// TestChooseFriendEndpoint covers the Figure 3 path: befriend + list friends.
func TestChooseFriendEndpoint(t *testing.T) {
	_, srv := newServer(t)
	postJSON(t, srv.URL+"/api/befriend", map[string]string{"a": "Jerry", "b": "Kramer"}, nil)
	var got struct {
		User    string
		Friends []string
	}
	getJSON(t, srv.URL+"/api/friends?user=Jerry", &got)
	if len(got.Friends) != 1 || got.Friends[0] != "Kramer" {
		t.Errorf("friends = %v", got.Friends)
	}
	resp := getJSON(t, srv.URL+"/api/friends", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing user → %d", resp.StatusCode)
	}
}

// TestFriendsBookingsEndpoint covers the Figure 4 view over HTTP.
func TestFriendsBookingsEndpoint(t *testing.T) {
	s, srv := newServer(t)
	s.Befriend("Jerry", "Kramer")
	b, err := s.BookDirect("Kramer", 122)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Await(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	var flights []FlightInfo
	getJSON(t, srv.URL+"/api/flights?user=Jerry&dest=Paris", &flights)
	if len(flights) != 3 {
		t.Fatalf("flights = %v", flights)
	}
	found := false
	for _, f := range flights {
		if f.Fno == 122 {
			if len(f.FriendsBooked) != 1 || f.FriendsBooked[0] != "Kramer" {
				t.Errorf("friends on 122 = %v", f.FriendsBooked)
			}
			found = true
		}
	}
	if !found {
		t.Error("flight 122 missing from search")
	}
}

// TestBookEndpointPairCoordination drives E2 over HTTP: the second booking
// returns confirmed synchronously because the partner is already waiting.
func TestBookEndpointPairCoordination(t *testing.T) {
	_, srv := newServer(t)
	var first map[string]any
	postJSON(t, srv.URL+"/api/book", bookRequest{User: "Jerry", Kind: "flight", Friends: []string{"Kramer"}, Dest: "Paris"}, &first)
	if first["status"] != "pending" {
		t.Fatalf("first booking = %v", first)
	}
	var second map[string]any
	postJSON(t, srv.URL+"/api/book", bookRequest{User: "Kramer", Kind: "flight", Friends: []string{"Jerry"}, Dest: "Paris"}, &second)
	if second["status"] != "confirmed" {
		t.Fatalf("second booking = %v", second)
	}
	// Account view reflects the now-confirmed first booking.
	var acct []map[string]any
	getJSON(t, srv.URL+"/api/account?user=Jerry", &acct)
	if len(acct) != 1 || acct[0]["status"] != "confirmed" {
		t.Errorf("account = %v", acct)
	}
	// Flights agree.
	if acct[0]["flight"] != second["flight"] {
		t.Errorf("flights differ: %v vs %v", acct[0]["flight"], second["flight"])
	}
	// Inbox has the Facebook-style message.
	var inbox []Message
	getJSON(t, srv.URL+"/api/inbox?user=Jerry", &inbox)
	if len(inbox) != 1 || !strings.Contains(inbox[0].Text, "confirmed") {
		t.Errorf("inbox = %v", inbox)
	}
}

func TestBookEndpointValidation(t *testing.T) {
	_, srv := newServer(t)
	cases := []bookRequest{
		{},          // no user
		{User: "J"}, // no dest for flight
		{User: "J", Kind: "nope", Dest: "Paris"},
		{User: "J", Kind: "seat", Dest: "Paris"}, // needs exactly one friend
		{User: "J", Kind: "direct"},              // needs fno
		{User: "J", Kind: "trip"},                // needs dest
	}
	for i, req := range cases {
		resp := postJSON(t, srv.URL+"/api/book", req, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d", i, resp.StatusCode)
		}
	}
	// GET on POST endpoints.
	if resp := getJSON(t, srv.URL+"/api/book", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/book → %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/api/befriend", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/befriend → %d", resp.StatusCode)
	}
}

func TestAdminStateEndpoint(t *testing.T) {
	_, srv := newServer(t)
	postJSON(t, srv.URL+"/api/book", bookRequest{User: "Jerry", Kind: "flight", Friends: []string{"Kramer"}, Dest: "Paris"}, nil)
	resp, err := http.Get(srv.URL + "/api/admin/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	body := buf.String()
	for _, want := range []string{"Pending entangled queries (1)", "Reservation('Jerry', fno)"} {
		if !strings.Contains(body, want) {
			t.Errorf("admin state missing %q:\n%s", want, body)
		}
	}
}

func TestAdminGraphEndpoint(t *testing.T) {
	_, srv := newServer(t)
	postJSON(t, srv.URL+"/api/book", bookRequest{User: "Jerry", Kind: "flight", Friends: []string{"Kramer"}, Dest: "Paris"}, nil)
	resp, err := http.Get(srv.URL + "/api/admin/graph")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	if !strings.Contains(buf.String(), "digraph entanglement") {
		t.Errorf("graph = %q", buf.String())
	}
}

func TestAdminDiagnoseEndpoint(t *testing.T) {
	_, srv := newServer(t)
	var booked map[string]any
	postJSON(t, srv.URL+"/api/book", bookRequest{User: "Jerry", Kind: "flight", Friends: []string{"Ghost"}, Dest: "Paris"}, &booked)
	id := int64(booked["id"].(float64))
	var d struct {
		Summary       string
		PerConstraint []struct {
			Constraint   string
			PendingHeads int
		}
	}
	getJSON(t, fmt.Sprintf("%s/api/admin/diagnose?id=%d", srv.URL, id), &d)
	if !strings.Contains(d.Summary, "no candidate cover") || len(d.PerConstraint) != 1 {
		t.Errorf("diagnose = %+v", d)
	}
	if r := getJSON(t, srv.URL+"/api/admin/diagnose?id=999", nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id → %d", r.StatusCode)
	}
	if r := getJSON(t, srv.URL+"/api/admin/diagnose?id=abc", nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id → %d", r.StatusCode)
	}
}

func TestIndexAndFlightsValidation(t *testing.T) {
	_, srv := newServer(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	if !strings.Contains(buf.String(), "Youtopia travel demo") {
		t.Error("index page missing")
	}
	if r := getJSON(t, srv.URL+"/nope", nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path → %d", r.StatusCode)
	}
	if r := getJSON(t, srv.URL+"/api/flights?user=J", nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("missing dest → %d", r.StatusCode)
	}
	if r := getJSON(t, srv.URL+"/api/flights?user=J&dest=Paris&maxprice=abc", nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad maxprice → %d", r.StatusCode)
	}
	var flights []FlightInfo
	getJSON(t, fmt.Sprintf("%s/api/flights?user=J&dest=Paris&maxprice=%d", srv.URL, 400), &flights)
	if len(flights) != 1 || flights[0].Fno != 123 {
		t.Errorf("maxprice filter: %v", flights)
	}
}

// TestSeatBookingOverHTTP exercises kind=seat end to end.
func TestSeatBookingOverHTTP(t *testing.T) {
	_, srv := newServer(t)
	var first, second map[string]any
	postJSON(t, srv.URL+"/api/book", bookRequest{User: "Jerry", Kind: "seat", Friends: []string{"Kramer"}, Dest: "Paris"}, &first)
	postJSON(t, srv.URL+"/api/book", bookRequest{User: "Kramer", Kind: "seat", Friends: []string{"Jerry"}, Dest: "Paris"}, &second)
	if second["status"] != "confirmed" {
		t.Fatalf("second = %v", second)
	}
	if second["seat"] == float64(0) {
		t.Errorf("no seat assigned: %v", second)
	}
}
