// Package travel implements the middle tier of the paper's demonstration
// application: a travel Web site where users coordinate flight and hotel
// reservations with their friends (§2.2, §3.1).
//
// The package provides the "standard functionality of a travel Web site such
// as searching for flights and hotels, selecting specific flights and
// hotels", a simulated social network standing in for the Facebook API
// (friend lists and notification messages — see the substitution table in
// DESIGN.md), an account view of pending and confirmed reservations, and the
// translation of coordination requests into entangled queries submitted to
// the Youtopia core.
package travel

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// Answer relation names used by the travel application.
const (
	RelFlight = "Reservation"      // (traveler STRING, fno INT)
	RelHotel  = "HotelReservation" // (traveler STRING, hno INT)
	RelSeat   = "SeatReservation"  // (traveler STRING, fno INT, seat INT)
)

// quote escapes a string for embedding as a SQL literal.
func quote(s string) string { return "'" + strings.ReplaceAll(s, "'", "''") + "'" }

// writeQuote writes a quoted SQL string literal into b without the
// intermediate string quote would allocate (builders render one query per
// booking request on loaded systems).
func writeQuote(b *strings.Builder, s string) {
	b.WriteByte('\'')
	if strings.ContainsRune(s, '\'') {
		b.WriteString(strings.ReplaceAll(s, "'", "''"))
	} else {
		b.WriteString(s)
	}
	b.WriteByte('\'')
}

// FlightFilter narrows the acceptable flights of a booking request — the
// "certain date and price constraints" of the paper's intro.
type FlightFilter struct {
	Dest     string
	Origin   string  // optional
	MaxPrice float64 // 0 = unconstrained
	// DayFrom/DayTo bound the departure day (inclusive); zero = open.
	DayFrom, DayTo int
	// Capacity, when positive, excludes flights that already hold that many
	// reservations. Because the shared answer relation is an ordinary
	// queryable table, the exclusion is just another residual predicate:
	//   fno NOT IN (SELECT a2 FROM Reservation GROUP BY a2 HAVING COUNT(*) >= cap)
	// — coordination composes with capacity without any special machinery.
	Capacity int
}

func (f FlightFilter) subquery() string {
	var b strings.Builder
	f.writeSubquery(&b)
	return b.String()
}

func (f FlightFilter) writeSubquery(b *strings.Builder) {
	b.WriteString("SELECT fno FROM Flights WHERE dest = ")
	writeQuote(b, f.Dest)
	if f.Origin != "" {
		b.WriteString(" AND origin = ")
		writeQuote(b, f.Origin)
	}
	if f.MaxPrice > 0 {
		b.WriteString(" AND price <= ")
		b.WriteString(strconv.FormatFloat(f.MaxPrice, 'g', -1, 64))
	}
	if f.DayFrom > 0 || f.DayTo > 0 {
		from, to := f.DayFrom, f.DayTo
		if from == 0 {
			from = 1
		}
		if to == 0 {
			to = 1 << 30
		}
		fmt.Fprintf(b, " AND day BETWEEN %d AND %d", from, to)
	}
}

// HotelFilter narrows acceptable hotels.
type HotelFilter struct {
	City     string
	MaxPrice float64
	// NameLike, when set, restricts hotels by name with a SQL LIKE pattern
	// (% and _ wildcards).
	NameLike string
}

func (h HotelFilter) subquery() string {
	var b strings.Builder
	h.writeSubquery(&b)
	return b.String()
}

func (h HotelFilter) writeSubquery(b *strings.Builder) {
	b.WriteString("SELECT hno FROM Hotels WHERE city = ")
	writeQuote(b, h.City)
	if h.MaxPrice > 0 {
		b.WriteString(" AND price <= ")
		b.WriteString(strconv.FormatFloat(h.MaxPrice, 'g', -1, 64))
	}
	if h.NameLike != "" {
		b.WriteString(" AND name LIKE ")
		writeQuote(b, h.NameLike)
	}
}

// BuildFlightQuery renders the entangled query for "book a flight matching
// filter, on the same flight as each of friends". With no friends it
// degenerates to an uncoordinated (immediately answerable) booking — the
// direct-booking path of Figure 4.
func BuildFlightQuery(self string, friends []string, f FlightFilter) string {
	return BuildFlightQueryInto(RelFlight, self, friends, f)
}

// BuildFlightQueryInto is BuildFlightQuery over an arbitrary answer
// relation. Workloads use it to spread coordination across disjoint relation
// footprints, which the sharded coordinator routes to independent lanes.
func BuildFlightQueryInto(rel, self string, friends []string, f FlightFilter) string {
	var b strings.Builder
	b.Grow(160 + 48*len(friends))
	b.WriteString("SELECT ")
	writeQuote(&b, self)
	b.WriteString(", fno INTO ANSWER ")
	b.WriteString(rel)
	b.WriteString("\nWHERE fno IN (")
	f.writeSubquery(&b)
	b.WriteByte(')')
	if f.Capacity > 0 {
		group := len(friends) + 1
		if group > f.Capacity {
			// The whole group can never fit; make the request unmatchable
			// rather than silently over-booking.
			b.WriteString("\nAND 1 = 0")
		} else {
			// Leave headroom for this whole coordination group: the match
			// installs `group` tuples at once.
			fmt.Fprintf(&b, "\nAND fno NOT IN (SELECT a2 FROM %s GROUP BY a2 HAVING COUNT(*) > %d)",
				rel, f.Capacity-group)
		}
	}
	for _, fr := range friends {
		b.WriteString("\nAND (")
		writeQuote(&b, fr)
		b.WriteString(", fno) IN ANSWER ")
		b.WriteString(rel)
	}
	b.WriteString("\nCHOOSE 1")
	return b.String()
}

// BuildTripQuery renders the two-atom entangled query for "book a flight AND
// a hotel, both shared with each of friends" — §3.1's flight-and-hotel
// scenario, including its group variant.
func BuildTripQuery(self string, friends []string, f FlightFilter, h HotelFilter) string {
	var b strings.Builder
	b.Grow(256 + 96*len(friends))
	b.WriteString("SELECT (")
	writeQuote(&b, self)
	b.WriteString(", fno) INTO ANSWER " + RelFlight + ", (")
	writeQuote(&b, self)
	b.WriteString(", hno) INTO ANSWER " + RelHotel + "\nWHERE fno IN (")
	f.writeSubquery(&b)
	b.WriteString(")\nAND hno IN (")
	h.writeSubquery(&b)
	b.WriteByte(')')
	for _, fr := range friends {
		b.WriteString("\nAND (")
		writeQuote(&b, fr)
		b.WriteString(", fno) IN ANSWER " + RelFlight + "\nAND (")
		writeQuote(&b, fr)
		b.WriteString(", hno) IN ANSWER " + RelHotel)
	}
	b.WriteString("\nCHOOSE 1")
	return b.String()
}

// BuildAdjacentSeatQuery renders the entangled query for "fly in an adjacent
// seat to friend" (the first §3.1 scenario offers this stronger variant).
// Adjacency is encoded relationally: the SeatPairs base table lists the
// adjacent (seat1, seat2) pairs of every flight symmetrically, so two
// symmetric queries ground to complementary seats of one pair by pure
// unification — no arithmetic across queries is needed.
func BuildAdjacentSeatQuery(self, friend string, f FlightFilter) string {
	return fmt.Sprintf(`SELECT %s, fno, myseat INTO ANSWER %s
WHERE (fno, myseat, yourseat) IN (SELECT p.fno, p.seat1, p.seat2 FROM SeatPairs p, Flights f WHERE p.fno = f.fno AND %s)
AND (%s, fno, yourseat) IN ANSWER %s
CHOOSE 1`,
		quote(self), RelSeat,
		strings.Join(flightConds("f", f), " AND "),
		quote(friend), RelSeat)
}

func flightConds(alias string, f FlightFilter) []string {
	conds := []string{alias + ".dest = " + quote(f.Dest)}
	if f.Origin != "" {
		conds = append(conds, alias+".origin = "+quote(f.Origin))
	}
	if f.MaxPrice > 0 {
		conds = append(conds, fmt.Sprintf("%s.price <= %g", alias, f.MaxPrice))
	}
	if f.DayFrom > 0 || f.DayTo > 0 {
		from, to := f.DayFrom, f.DayTo
		if from == 0 {
			from = 1
		}
		if to == 0 {
			to = 1 << 30
		}
		conds = append(conds, fmt.Sprintf("%s.day BETWEEN %d AND %d", alias, from, to))
	}
	return conds
}

// BuildDirectBooking renders the constraint-free entangled query used when a
// user, having seen a friend's existing booking (Figure 4), books a specific
// flight directly.
func BuildDirectBooking(self string, fno int64) string {
	return fmt.Sprintf("SELECT %s, fno INTO ANSWER %s\nWHERE fno = %d\nCHOOSE 1", quote(self), RelFlight, fno)
}

// ---------------------------------------------------------------------------
// Prepared templates
//
// The builders above embed every constant into SQL text, so each booking
// request costs a full parse + compile and floats detour through %g
// formatting. The *Template/*Params pairs below split each query into a
// placeholder template — whose text depends only on the request SHAPE
// (answer relation, friend count, which optional filter pieces are present)
// — and a typed parameter vector. The middle tier prepares the template once
// (the core's statement cache makes that automatic) and binds a fresh vector
// per booking: parse-once/bind-many, with float parameters carried as typed
// float64 end to end.

// writeSubqueryTemplate renders the flight-filter subquery with placeholders
// for every present constant; appendParams appends the matching vector
// values in the same textual order.
func (f FlightFilter) writeSubqueryTemplate(b *strings.Builder) {
	b.WriteString("SELECT fno FROM Flights WHERE dest = ?")
	if f.Origin != "" {
		b.WriteString(" AND origin = ?")
	}
	if f.MaxPrice > 0 {
		b.WriteString(" AND price <= ?")
	}
	if f.DayFrom > 0 || f.DayTo > 0 {
		b.WriteString(" AND day BETWEEN ? AND ?")
	}
}

func (f FlightFilter) appendParams(t value.Tuple) value.Tuple {
	t = append(t, value.NewString(f.Dest))
	if f.Origin != "" {
		t = append(t, value.NewString(f.Origin))
	}
	if f.MaxPrice > 0 {
		// Typed float parameter: no %g text round trip, bit-exact.
		t = append(t, value.NewFloat(f.MaxPrice))
	}
	if f.DayFrom > 0 || f.DayTo > 0 {
		from, to := f.DayFrom, f.DayTo
		if from == 0 {
			from = 1
		}
		if to == 0 {
			to = 1 << 30
		}
		t = append(t, value.NewInt(int64(from)), value.NewInt(int64(to)))
	}
	return t
}

func (h HotelFilter) writeSubqueryTemplate(b *strings.Builder) {
	b.WriteString("SELECT hno FROM Hotels WHERE city = ?")
	if h.MaxPrice > 0 {
		b.WriteString(" AND price <= ?")
	}
	if h.NameLike != "" {
		b.WriteString(" AND name LIKE ?")
	}
}

func (h HotelFilter) appendParams(t value.Tuple) value.Tuple {
	t = append(t, value.NewString(h.City))
	if h.MaxPrice > 0 {
		t = append(t, value.NewFloat(h.MaxPrice))
	}
	if h.NameLike != "" {
		t = append(t, value.NewString(h.NameLike))
	}
	return t
}

// FlightQueryTemplate is BuildFlightQueryInto with placeholders: the self
// name, every filter constant and every friend name become parameters. Two
// requests with the same relation, friend count and filter shape share one
// template text (and therefore one cached compilation).
func FlightQueryTemplate(rel string, nFriends int, f FlightFilter) string {
	var b strings.Builder
	b.Grow(160 + 32*nFriends)
	b.WriteString("SELECT ?, fno INTO ANSWER ")
	b.WriteString(rel)
	b.WriteString("\nWHERE fno IN (")
	f.writeSubqueryTemplate(&b)
	b.WriteByte(')')
	if f.Capacity > 0 {
		group := nFriends + 1
		if group > f.Capacity {
			b.WriteString("\nAND 1 = 0")
		} else {
			fmt.Fprintf(&b, "\nAND fno NOT IN (SELECT a2 FROM %s GROUP BY a2 HAVING COUNT(*) > %d)",
				rel, f.Capacity-group)
		}
	}
	for i := 0; i < nFriends; i++ {
		b.WriteString("\nAND (?, fno) IN ANSWER ")
		b.WriteString(rel)
	}
	b.WriteString("\nCHOOSE 1")
	return b.String()
}

// FlightQueryParams builds the vector FlightQueryTemplate's placeholders
// bind, in textual order: self, filter constants, friends.
func FlightQueryParams(self string, friends []string, f FlightFilter) value.Tuple {
	t := make(value.Tuple, 0, 2+len(friends)+4)
	t = append(t, value.NewString(self))
	t = f.appendParams(t)
	for _, fr := range friends {
		t = append(t, value.NewString(fr))
	}
	return t
}

// TripQueryTemplate is BuildTripQuery with placeholders (see
// FlightQueryTemplate).
func TripQueryTemplate(nFriends int, f FlightFilter, h HotelFilter) string {
	var b strings.Builder
	b.Grow(256 + 64*nFriends)
	b.WriteString("SELECT (?, fno) INTO ANSWER " + RelFlight + ", (?, hno) INTO ANSWER " + RelHotel)
	b.WriteString("\nWHERE fno IN (")
	f.writeSubqueryTemplate(&b)
	b.WriteString(")\nAND hno IN (")
	h.writeSubqueryTemplate(&b)
	b.WriteByte(')')
	for i := 0; i < nFriends; i++ {
		b.WriteString("\nAND (?, fno) IN ANSWER " + RelFlight + "\nAND (?, hno) IN ANSWER " + RelHotel)
	}
	b.WriteString("\nCHOOSE 1")
	return b.String()
}

// TripQueryParams builds the vector for TripQueryTemplate: self twice (one
// per answer atom), flight filter, hotel filter, then each friend twice.
func TripQueryParams(self string, friends []string, f FlightFilter, h HotelFilter) value.Tuple {
	t := make(value.Tuple, 0, 2+2*len(friends)+6)
	t = append(t, value.NewString(self), value.NewString(self))
	t = f.appendParams(t)
	t = h.appendParams(t)
	for _, fr := range friends {
		t = append(t, value.NewString(fr), value.NewString(fr))
	}
	return t
}

// AdjacentSeatTemplate is BuildAdjacentSeatQuery with placeholders.
func AdjacentSeatTemplate(f FlightFilter) string {
	var b strings.Builder
	b.WriteString("SELECT ?, fno, myseat INTO ANSWER " + RelSeat)
	b.WriteString("\nWHERE (fno, myseat, yourseat) IN (SELECT p.fno, p.seat1, p.seat2 FROM SeatPairs p, Flights f WHERE p.fno = f.fno AND f.dest = ?")
	if f.Origin != "" {
		b.WriteString(" AND f.origin = ?")
	}
	if f.MaxPrice > 0 {
		b.WriteString(" AND f.price <= ?")
	}
	if f.DayFrom > 0 || f.DayTo > 0 {
		b.WriteString(" AND f.day BETWEEN ? AND ?")
	}
	b.WriteString(")\nAND (?, fno, yourseat) IN ANSWER " + RelSeat + "\nCHOOSE 1")
	return b.String()
}

// AdjacentSeatParams builds the vector for AdjacentSeatTemplate.
func AdjacentSeatParams(self, friend string, f FlightFilter) value.Tuple {
	t := make(value.Tuple, 0, 6)
	t = append(t, value.NewString(self))
	t = f.appendParams(t)
	return append(t, value.NewString(friend))
}

// DirectBookingTemplate is BuildDirectBooking with placeholders.
const DirectBookingTemplate = "SELECT ?, fno INTO ANSWER " + RelFlight + "\nWHERE fno = ?\nCHOOSE 1"

// DirectBookingParams builds the vector for DirectBookingTemplate.
func DirectBookingParams(self string, fno int64) value.Tuple {
	return value.Tuple{value.NewString(self), value.NewInt(fno)}
}
