package travel

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/value"
)

// Destinations available in the demo catalog; Paris first, as in the paper.
var Destinations = []string{"Paris", "Rome", "London", "Berlin", "Oslo", "Madrid"}

// Airlines used for seeding, echoing Figure 1(a).
var Airlines = []string{"United", "Lufthansa", "Alitalia", "AirFrance", "KLM"}

// SeedConfig controls the size of the generated travel catalog.
type SeedConfig struct {
	FlightsPerDest int // default 8
	HotelsPerCity  int // default 6
	SeatRows       int // adjacent-seat pairs per flight come from this many rows (default 4)
	Seed           int64
}

func (c SeedConfig) withDefaults() SeedConfig {
	if c.FlightsPerDest == 0 {
		c.FlightsPerDest = 8
	}
	if c.HotelsPerCity == 0 {
		c.HotelsPerCity = 6
	}
	if c.SeatRows == 0 {
		c.SeatRows = 4
	}
	return c
}

// Schema is the DDL of the travel database.
const Schema = `
CREATE TABLE Flights (fno INT, origin STRING, dest STRING, day INT, price FLOAT, airline STRING, PRIMARY KEY (fno));
CREATE TABLE Hotels (hno INT, city STRING, name STRING, price FLOAT, PRIMARY KEY (hno));
CREATE TABLE SeatPairs (fno INT, seat1 INT, seat2 INT);
CREATE INDEX ON Flights (dest);
CREATE INDEX ON Hotels (city);
CREATE INDEX ON SeatPairs (fno);
`

// Seed creates and populates the travel schema on a Youtopia system.
func Seed(sys *core.System, cfg SeedConfig) error {
	cfg = cfg.withDefaults()
	if err := sys.Exec(Schema); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var flights, seats, hotels []string
	fno := 100
	for _, dest := range Destinations {
		for i := 0; i < cfg.FlightsPerDest; i++ {
			price := 150 + rng.Float64()*450
			day := 1 + rng.Intn(28)
			airline := Airlines[rng.Intn(len(Airlines))]
			flights = append(flights, fmt.Sprintf("(%d, 'New York', %s, %d, %.2f, %s)",
				fno, quote(dest), day, price, quote(airline)))
			// Symmetric adjacent pairs: seats 1..6 per row, adjacency within
			// a row; both orientations so symmetric queries unify.
			for row := 0; row < cfg.SeatRows; row++ {
				for s := 1; s < 6; s++ {
					a, b := row*6+s, row*6+s+1
					seats = append(seats, fmt.Sprintf("(%d, %d, %d)", fno, a, b))
					seats = append(seats, fmt.Sprintf("(%d, %d, %d)", fno, b, a))
				}
			}
			fno++
		}
	}
	hno := 1
	for _, city := range Destinations {
		for i := 0; i < cfg.HotelsPerCity; i++ {
			price := 60 + rng.Float64()*240
			hotels = append(hotels, fmt.Sprintf("(%d, %s, %s, %.2f)",
				hno, quote(city), quote(fmt.Sprintf("Hotel %s %d", city, i+1)), price))
			hno++
		}
	}
	if err := sys.Exec("INSERT INTO Flights VALUES " + strings.Join(flights, ", ")); err != nil {
		return err
	}
	if err := sys.Exec("INSERT INTO Hotels VALUES " + strings.Join(hotels, ", ")); err != nil {
		return err
	}
	// Seats can be a large statement; insert in chunks.
	for i := 0; i < len(seats); i += 500 {
		end := i + 500
		if end > len(seats) {
			end = len(seats)
		}
		if err := sys.Exec("INSERT INTO SeatPairs VALUES " + strings.Join(seats[i:end], ", ")); err != nil {
			return err
		}
	}
	return EnsureAnswerRelations(sys)
}

// EnsureAnswerRelations pre-creates the travel answer relations (empty) so
// residual predicates — like FlightFilter.Capacity's occupancy subquery —
// can reference them before the first coordinated answer is installed.
func EnsureAnswerRelations(sys *core.System) error {
	protos := map[string]value.Tuple{
		RelFlight: value.NewTuple("", 0),
		RelHotel:  value.NewTuple("", 0),
		RelSeat:   value.NewTuple("", 0, 0),
	}
	for _, name := range []string{RelFlight, RelHotel, RelSeat} {
		if _, err := sys.Answers().Ensure(name, protos[name]); err != nil {
			return err
		}
	}
	return nil
}

// SeedFigure1 loads exactly the Figure 1(a) database (plus the airline
// column folded into Flights), for tests and the quickstart example.
func SeedFigure1(sys *core.System) error {
	if err := sys.Exec(`
		CREATE TABLE Flights (fno INT, origin STRING, dest STRING, day INT, price FLOAT, airline STRING, PRIMARY KEY (fno));
		CREATE TABLE Hotels (hno INT, city STRING, name STRING, price FLOAT, PRIMARY KEY (hno));
		CREATE TABLE SeatPairs (fno INT, seat1 INT, seat2 INT);
		INSERT INTO Flights VALUES
			(122, 'New York', 'Paris', 10, 420.00, 'United'),
			(123, 'New York', 'Paris', 11, 380.00, 'United'),
			(134, 'New York', 'Paris', 12, 450.00, 'Lufthansa'),
			(136, 'New York', 'Rome', 10, 390.00, 'Alitalia');
		INSERT INTO Hotels VALUES
			(7, 'Paris', 'Hotel Paris 1', 120.00),
			(8, 'Paris', 'Hotel Paris 2', 95.00),
			(9, 'Rome', 'Hotel Roma', 110.00);
		INSERT INTO SeatPairs VALUES
			(122, 1, 2), (122, 2, 1), (122, 2, 3), (122, 3, 2),
			(123, 1, 2), (123, 2, 1),
			(134, 1, 2), (134, 2, 1),
			(136, 1, 2), (136, 2, 1);
	`); err != nil {
		return err
	}
	return EnsureAnswerRelations(sys)
}
