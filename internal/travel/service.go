package travel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/value"
)

// Status of a booking request.
type Status string

// Booking statuses shown in the account view.
const (
	StatusPending   Status = "pending"
	StatusConfirmed Status = "confirmed"
	StatusCanceled  Status = "canceled"
)

// Message is a notification delivered to a user — the stand-in for the
// demo's "Jerry is notified of the success of his request via a Facebook
// message".
type Message struct {
	To   string
	Text string
	At   time.Time
}

// Booking is one coordination request and its eventual outcome.
type Booking struct {
	ID      uint64 // the underlying entangled query id
	User    string
	Kind    string // "flight" | "trip" | "seat" | "direct"
	Friends []string
	SQL     string

	mu     sync.Mutex
	status Status
	flight int64 // 0 until confirmed (flight-bearing kinds)
	hotel  int64
	seat   int64
	done   chan struct{}
}

// Status returns the booking's current status.
func (b *Booking) Status() Status {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.status
}

// Details returns the confirmed flight/hotel/seat numbers (zero until
// confirmed).
func (b *Booking) Details() (flight, hotel, seat int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flight, b.hotel, b.seat
}

// Done is closed when the booking reaches a terminal status.
func (b *Booking) Done() <-chan struct{} { return b.done }

// Await blocks until the booking resolves or the timeout elapses.
func (b *Booking) Await(timeout time.Duration) (Status, error) {
	select {
	case <-b.done:
		return b.Status(), nil
	case <-time.After(timeout):
		return b.Status(), fmt.Errorf("travel: booking %d still %s after %s", b.ID, b.Status(), timeout)
	}
}

// Service is the travel site's middle tier.
type Service struct {
	sys *core.System

	mu       sync.Mutex
	friends  map[string]map[string]bool
	inbox    map[string][]Message
	bookings []*Booking
}

// NewService builds the middle tier over a Youtopia system whose travel
// schema is already seeded (Seed or SeedFigure1).
func NewService(sys *core.System) *Service {
	return &Service{
		sys:     sys,
		friends: make(map[string]map[string]bool),
		inbox:   make(map[string][]Message),
	}
}

// System exposes the underlying Youtopia instance.
func (s *Service) System() *core.System { return s.sys }

// --- simulated social network (Facebook substitution) ----------------------

// Befriend records a mutual friendship, creating users as needed ("logging
// in to Facebook so that contact information can be imported").
func (s *Service) Befriend(a, b string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.friends[a] == nil {
		s.friends[a] = make(map[string]bool)
	}
	if s.friends[b] == nil {
		s.friends[b] = make(map[string]bool)
	}
	s.friends[a][b] = true
	s.friends[b][a] = true
}

// Friends returns a user's friend list, sorted — the data behind Figure 3's
// "choosing a friend for flight coordination".
func (s *Service) Friends(user string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.friends[user]))
	for f := range s.friends[user] {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// notify posts a message to a user's inbox.
func (s *Service) notify(to, text string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inbox[to] = append(s.inbox[to], Message{To: to, Text: text, At: time.Now()})
}

// Inbox returns a snapshot of a user's notifications.
func (s *Service) Inbox(user string) []Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Message(nil), s.inbox[user]...)
}

// --- search / browse --------------------------------------------------------

// FlightInfo is one row of a flight search result.
type FlightInfo struct {
	Fno     int64
	Origin  string
	Dest    string
	Day     int64
	Price   float64
	Airline string
	// FriendsBooked lists the caller's friends already holding a reservation
	// on the flight (Figure 4).
	FriendsBooked []string
}

// SearchFlights lists flights matching the filter, cheapest first.
func (s *Service) SearchFlights(f FlightFilter) ([]FlightInfo, error) {
	res, err := s.sys.Query("SELECT fno, origin, dest, day, price, airline FROM Flights WHERE " +
		strings.Join(flightConds("Flights", f), " AND ") + " ORDER BY price")
	if err != nil {
		return nil, err
	}
	out := make([]FlightInfo, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = FlightInfo{
			Fno: r[0].Int(), Origin: r[1].Str(), Dest: r[2].Str(),
			Day: r[3].Int(), Price: r[4].Float(), Airline: r[5].Str(),
		}
	}
	return out, nil
}

// SearchFlightsWithFriends is the Figure 4 view: flights matching the filter
// annotated with which of user's friends already have bookings on them.
func (s *Service) SearchFlightsWithFriends(user string, f FlightFilter) ([]FlightInfo, error) {
	flights, err := s.SearchFlights(f)
	if err != nil {
		return nil, err
	}
	friendSet := make(map[string]bool)
	for _, fr := range s.Friends(user) {
		friendSet[fr] = true
	}
	booked := make(map[int64][]string)
	for _, tup := range s.sys.Answers().Tuples(RelFlight) {
		traveler, fno := tup[0].Str(), tup[1].Int()
		if friendSet[traveler] {
			booked[fno] = append(booked[fno], traveler)
		}
	}
	for i := range flights {
		fs := booked[flights[i].Fno]
		sort.Strings(fs)
		flights[i].FriendsBooked = fs
	}
	return flights, nil
}

// HotelInfo is one row of a hotel search result.
type HotelInfo struct {
	Hno   int64
	City  string
	Name  string
	Price float64
	// FriendsBooked lists the caller's friends already holding a reservation
	// in the hotel — the hotel-side analogue of Figure 4.
	FriendsBooked []string
}

// SearchHotelsWithFriends lists hotels matching the filter annotated with
// which of user's friends already have hotel reservations there.
func (s *Service) SearchHotelsWithFriends(user string, h HotelFilter) ([]HotelInfo, error) {
	res, err := s.sys.Query(fmt.Sprintf(
		"SELECT hno, city, name, price FROM Hotels WHERE hno IN (%s) ORDER BY price", h.subquery()))
	if err != nil {
		return nil, err
	}
	friendSet := make(map[string]bool)
	for _, fr := range s.Friends(user) {
		friendSet[fr] = true
	}
	booked := make(map[int64][]string)
	for _, tup := range s.sys.Answers().Tuples(RelHotel) {
		traveler, hno := tup[0].Str(), tup[1].Int()
		if friendSet[traveler] {
			booked[hno] = append(booked[hno], traveler)
		}
	}
	out := make([]HotelInfo, len(res.Rows))
	for i, r := range res.Rows {
		fs := booked[r[0].Int()]
		sort.Strings(fs)
		out[i] = HotelInfo{
			Hno: r[0].Int(), City: r[1].Str(), Name: r[2].Str(),
			Price: r[3].Float(), FriendsBooked: fs,
		}
	}
	return out, nil
}

// SearchHotels lists hotels matching the filter, cheapest first.
func (s *Service) SearchHotels(h HotelFilter) ([]value.Tuple, error) {
	res, err := s.sys.Query(fmt.Sprintf(
		"SELECT hno, city, name, price FROM Hotels WHERE hno IN (%s) ORDER BY price", h.subquery()))
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// --- booking ----------------------------------------------------------------

// BookFlight submits "fly to f.Dest on the same flight as friends" (§3.1
// scenarios 1, 3 and 4; friends may be empty, one, or a whole group).
//
// Booking requests go through prepared templates: all requests with the same
// shape (relation, friend count, filter pieces) share one parsed/compiled
// artifact — the core's statement cache keeps it alive — and only the typed
// parameter vector varies per request.
func (s *Service) BookFlight(user string, friends []string, f FlightFilter) (*Booking, error) {
	tmpl := FlightQueryTemplate(RelFlight, len(friends), f)
	return s.submit(user, "flight", friends, tmpl, FlightQueryParams(user, friends, f))
}

// BookTrip submits the combined flight+hotel coordination (§3.1 scenarios 2
// and 5).
func (s *Service) BookTrip(user string, friends []string, f FlightFilter, h HotelFilter) (*Booking, error) {
	tmpl := TripQueryTemplate(len(friends), f, h)
	return s.submit(user, "trip", friends, tmpl, TripQueryParams(user, friends, f, h))
}

// BookAdjacentSeat submits "fly in an adjacent seat to friend".
func (s *Service) BookAdjacentSeat(user, friend string, f FlightFilter) (*Booking, error) {
	tmpl := AdjacentSeatTemplate(f)
	return s.submit(user, "seat", []string{friend}, tmpl, AdjacentSeatParams(user, friend, f))
}

// BookDirect books a specific flight with no coordination constraints — the
// Figure 4 alternate path after browsing friends' bookings.
func (s *Service) BookDirect(user string, fno int64) (*Booking, error) {
	return s.submit(user, "direct", nil, DirectBookingTemplate, DirectBookingParams(user, fno))
}

// CancelBooking withdraws a still-pending booking.
func (s *Service) CancelBooking(b *Booking) bool {
	return s.sys.Cancel(b.ID)
}

func (s *Service) submit(user, kind string, friends []string, src string, params value.Tuple) (*Booking, error) {
	ps, err := s.sys.Prepare(src)
	if err != nil {
		return nil, err
	}
	h, err := ps.SubmitBound(params, user)
	if err != nil {
		return nil, err
	}
	b := &Booking{
		ID: h.ID, User: user, Kind: kind,
		Friends: append([]string(nil), friends...),
		SQL:     src, status: StatusPending,
		done: make(chan struct{}),
	}
	s.mu.Lock()
	s.bookings = append(s.bookings, b)
	s.mu.Unlock()
	go s.awaitOutcome(b, h)
	return b, nil
}

// awaitOutcome waits for the coordinated answer and turns it into account
// state plus a notification message.
func (s *Service) awaitOutcome(b *Booking, h *coord.Handle) {
	out := <-h.Done()
	b.mu.Lock()
	if out.Canceled {
		b.status = StatusCanceled
	} else {
		b.status = StatusConfirmed
		for _, ans := range out.Answers {
			if len(ans.Tuples) == 0 {
				continue
			}
			tup := ans.Tuples[0]
			switch strings.ToLower(ans.Relation) {
			case strings.ToLower(RelFlight):
				b.flight = tup[1].Int()
			case strings.ToLower(RelHotel):
				b.hotel = tup[1].Int()
			case strings.ToLower(RelSeat):
				b.flight = tup[1].Int()
				b.seat = tup[2].Int()
			}
		}
	}
	status, flight, hotel, seat := b.status, b.flight, b.hotel, b.seat
	b.mu.Unlock()
	close(b.done)

	switch status {
	case StatusCanceled:
		s.notify(b.User, fmt.Sprintf("Your %s request was canceled.", b.Kind))
	case StatusConfirmed:
		text := fmt.Sprintf("Your %s request is confirmed: flight %d", b.Kind, flight)
		if hotel != 0 {
			text += fmt.Sprintf(", hotel %d", hotel)
		}
		if seat != 0 {
			text += fmt.Sprintf(", seat %d", seat)
		}
		if len(b.Friends) > 0 {
			text += " — together with " + strings.Join(b.Friends, ", ")
		}
		s.notify(b.User, text+".")
	}
}

// --- account view ------------------------------------------------------------

// AccountEntry is one row of the account view.
type AccountEntry struct {
	Booking *Booking
	Status  Status
}

// Account returns the user's bookings, pending first then by id — the demo's
// "account view where a user can see pending or confirmed reservations".
func (s *Service) Account(user string) []AccountEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []AccountEntry
	for _, b := range s.bookings {
		if b.User == user {
			out = append(out, AccountEntry{Booking: b, Status: b.Status()})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := out[i].Status == StatusPending, out[j].Status == StatusPending
		if pi != pj {
			return pi
		}
		return out[i].Booking.ID < out[j].Booking.ID
	})
	return out
}

// Reservations returns the user's confirmed flight reservations straight from
// the shared answer relation.
func (s *Service) Reservations(user string) []int64 {
	var out []int64
	for _, tup := range s.sys.Answers().Tuples(RelFlight) {
		if tup[0].Str() == user {
			out = append(out, tup[1].Int())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
