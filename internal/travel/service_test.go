package travel

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func newService(t *testing.T) *Service {
	t.Helper()
	sys := core.NewSystem(core.Config{})
	if err := SeedFigure1(sys); err != nil {
		t.Fatal(err)
	}
	return NewService(sys)
}

func await(t *testing.T, b *Booking) {
	t.Helper()
	if st, err := b.Await(2 * time.Second); err != nil || st != StatusConfirmed {
		t.Fatalf("booking %d: status %s, err %v", b.ID, st, err)
	}
}

// TestBookFlightWithFriend is E2: the §3.1 workflow — Jerry picks Kramer
// from his friend list, requests the same flight, Kramer submits the
// symmetric request, both get confirmed and notified.
func TestBookFlightWithFriend(t *testing.T) {
	s := newService(t)
	s.Befriend("Jerry", "Kramer")

	friends := s.Friends("Jerry")
	if len(friends) != 1 || friends[0] != "Kramer" {
		t.Fatalf("friends = %v", friends)
	}

	bJ, err := s.BookFlight("Jerry", []string{"Kramer"}, FlightFilter{Dest: "Paris"})
	if err != nil {
		t.Fatal(err)
	}
	if bJ.Status() != StatusPending {
		t.Fatalf("status = %s before partner arrives", bJ.Status())
	}
	bK, err := s.BookFlight("Kramer", []string{"Jerry"}, FlightFilter{Dest: "Paris"})
	if err != nil {
		t.Fatal(err)
	}
	await(t, bJ)
	await(t, bK)

	fJ, _, _ := bJ.Details()
	fK, _, _ := bK.Details()
	if fJ != fK {
		t.Errorf("different flights: %d vs %d", fJ, fK)
	}
	if fJ != 122 && fJ != 123 && fJ != 134 {
		t.Errorf("not a Paris flight: %d", fJ)
	}

	// Facebook-style notification.
	inbox := s.Inbox("Jerry")
	if len(inbox) != 1 || !strings.Contains(inbox[0].Text, "confirmed") ||
		!strings.Contains(inbox[0].Text, "Kramer") {
		t.Errorf("inbox = %v", inbox)
	}
	// Account view.
	acct := s.Account("Jerry")
	if len(acct) != 1 || acct[0].Status != StatusConfirmed {
		t.Errorf("account = %+v", acct)
	}
	if rs := s.Reservations("Jerry"); len(rs) != 1 || rs[0] != fJ {
		t.Errorf("reservations = %v", rs)
	}
}

// TestFilterConstraints: price/date constraints restrict the coordinated
// choice ("satisfies certain date and price constraints").
func TestFilterConstraints(t *testing.T) {
	s := newService(t)
	// Only flight 123 costs <= 400 among Paris flights.
	bJ, err := s.BookFlight("Jerry", []string{"Kramer"}, FlightFilter{Dest: "Paris", MaxPrice: 400})
	if err != nil {
		t.Fatal(err)
	}
	bK, err := s.BookFlight("Kramer", []string{"Jerry"}, FlightFilter{Dest: "Paris", MaxPrice: 400})
	if err != nil {
		t.Fatal(err)
	}
	await(t, bJ)
	await(t, bK)
	fJ, _, _ := bJ.Details()
	if fJ != 123 {
		t.Errorf("flight = %d, want 123 (the only one under 400)", fJ)
	}
}

// TestAsymmetricFiltersIntersect: partners with different constraints must
// land on a flight satisfying both.
func TestAsymmetricFiltersIntersect(t *testing.T) {
	s := newService(t)
	// Jerry wants day <= 11, Kramer wants price <= 400: only 123 fits both.
	bJ, _ := s.BookFlight("Jerry", []string{"Kramer"}, FlightFilter{Dest: "Paris", DayTo: 11})
	bK, _ := s.BookFlight("Kramer", []string{"Jerry"}, FlightFilter{Dest: "Paris", MaxPrice: 400})
	await(t, bJ)
	await(t, bK)
	fJ, _, _ := bJ.Details()
	fK, _, _ := bK.Details()
	if fJ != 123 || fK != 123 {
		t.Errorf("flights = %d, %d; want 123", fJ, fK)
	}
}

// TestImpossibleIntersectionStaysPending: disjoint constraints never match.
func TestImpossibleIntersectionStaysPending(t *testing.T) {
	s := newService(t)
	// Jerry insists on day <= 10 (only 122), Kramer on price <= 400 (only 123).
	bJ, _ := s.BookFlight("Jerry", []string{"Kramer"}, FlightFilter{Dest: "Paris", DayTo: 10})
	bK, _ := s.BookFlight("Kramer", []string{"Jerry"}, FlightFilter{Dest: "Paris", MaxPrice: 400})
	time.Sleep(50 * time.Millisecond)
	if bJ.Status() != StatusPending || bK.Status() != StatusPending {
		t.Errorf("statuses = %s, %s; want pending", bJ.Status(), bK.Status())
	}
	// Withdraw Jerry's request; he is notified of the cancellation.
	if !s.CancelBooking(bJ) {
		t.Fatal("cancel failed")
	}
	if st, _ := bJ.Await(time.Second); st != StatusCanceled {
		t.Errorf("status = %s", st)
	}
	if inbox := s.Inbox("Jerry"); len(inbox) != 1 || !strings.Contains(inbox[0].Text, "canceled") {
		t.Errorf("inbox = %v", inbox)
	}
}

// TestTripBooking is E3: flight + hotel in one entangled query.
func TestTripBooking(t *testing.T) {
	s := newService(t)
	f := FlightFilter{Dest: "Paris"}
	h := HotelFilter{City: "Paris"}
	bJ, err := s.BookTrip("Jerry", []string{"Kramer"}, f, h)
	if err != nil {
		t.Fatal(err)
	}
	bK, err := s.BookTrip("Kramer", []string{"Jerry"}, f, h)
	if err != nil {
		t.Fatal(err)
	}
	await(t, bJ)
	await(t, bK)
	fJ, hJ, _ := bJ.Details()
	fK, hK, _ := bK.Details()
	if fJ != fK || hJ != hK {
		t.Errorf("trip mismatch: (%d,%d) vs (%d,%d)", fJ, hJ, fK, hK)
	}
	if hJ != 7 && hJ != 8 {
		t.Errorf("hotel %d is not in Paris", hJ)
	}
	if msg := s.Inbox("Jerry")[0].Text; !strings.Contains(msg, "hotel") {
		t.Errorf("message lacks hotel: %q", msg)
	}
}

// TestGroupFlightBooking is E5: four friends on one flight via the service.
func TestGroupFlightBooking(t *testing.T) {
	s := newService(t)
	group := []string{"Jerry", "Kramer", "Elaine", "George"}
	bookings := make([]*Booking, len(group))
	for i, self := range group {
		var friends []string
		for j, f := range group {
			if i != j {
				friends = append(friends, f)
			}
		}
		b, err := s.BookFlight(self, friends, FlightFilter{Dest: "Paris"})
		if err != nil {
			t.Fatal(err)
		}
		bookings[i] = b
	}
	flights := map[int64]bool{}
	for _, b := range bookings {
		await(t, b)
		f, _, _ := b.Details()
		flights[f] = true
	}
	if len(flights) != 1 {
		t.Errorf("group split across flights %v", flights)
	}
}

// TestAdjacentSeats: the stronger §3.1 variant — same flight AND adjacent
// seats, by relational encoding of adjacency.
func TestAdjacentSeats(t *testing.T) {
	s := newService(t)
	bJ, err := s.BookAdjacentSeat("Jerry", "Kramer", FlightFilter{Dest: "Paris"})
	if err != nil {
		t.Fatal(err)
	}
	bK, err := s.BookAdjacentSeat("Kramer", "Jerry", FlightFilter{Dest: "Paris"})
	if err != nil {
		t.Fatal(err)
	}
	await(t, bJ)
	await(t, bK)
	fJ, _, sJ := bJ.Details()
	fK, _, sK := bK.Details()
	if fJ != fK {
		t.Fatalf("different flights: %d vs %d", fJ, fK)
	}
	if sJ == sK {
		t.Fatalf("same seat %d assigned twice", sJ)
	}
	diff := sJ - sK
	if diff != 1 && diff != -1 {
		t.Errorf("seats %d and %d are not adjacent", sJ, sK)
	}
}

// TestFigure4FriendsBookingsView: browse flights and see friends' bookings,
// then book directly.
func TestFigure4FriendsBookingsView(t *testing.T) {
	s := newService(t)
	s.Befriend("Jerry", "Kramer")
	// Kramer books flight 122 directly.
	bK, err := s.BookDirect("Kramer", 122)
	if err != nil {
		t.Fatal(err)
	}
	await(t, bK)

	flights, err := s.SearchFlightsWithFriends("Jerry", FlightFilter{Dest: "Paris"})
	if err != nil {
		t.Fatal(err)
	}
	var on122 []string
	for _, f := range flights {
		if f.Fno == 122 {
			on122 = f.FriendsBooked
		} else if len(f.FriendsBooked) != 0 {
			t.Errorf("unexpected friends on %d: %v", f.Fno, f.FriendsBooked)
		}
	}
	if len(on122) != 1 || on122[0] != "Kramer" {
		t.Fatalf("friends on 122 = %v", on122)
	}
	// Jerry decides and books the same flight directly.
	bJ, err := s.BookDirect("Jerry", 122)
	if err != nil {
		t.Fatal(err)
	}
	await(t, bJ)
	fJ, _, _ := bJ.Details()
	if fJ != 122 {
		t.Errorf("direct booking got %d", fJ)
	}
}

// TestNonFriendBookingsInvisible: only friends' bookings are shown.
func TestNonFriendBookingsInvisible(t *testing.T) {
	s := newService(t)
	bN, _ := s.BookDirect("Newman", 122) // not Jerry's friend
	await(t, bN)
	flights, err := s.SearchFlightsWithFriends("Jerry", FlightFilter{Dest: "Paris"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flights {
		if len(f.FriendsBooked) != 0 {
			t.Errorf("stranger's booking leaked into Jerry's view: %v", f)
		}
	}
}

// TestSearchHotelsWithFriends: the hotel-side Figure 4 view plus LIKE name
// filtering.
func TestSearchHotelsWithFriends(t *testing.T) {
	s := newService(t)
	s.Befriend("Jerry", "Kramer")

	// Kramer and Jerry coordinate a Paris trip; Kramer's hotel booking
	// should then surface in Jerry's hotel search.
	bJ, _ := s.BookTrip("Jerry", []string{"Kramer"}, FlightFilter{Dest: "Paris"}, HotelFilter{City: "Paris"})
	bK, _ := s.BookTrip("Kramer", []string{"Jerry"}, FlightFilter{Dest: "Paris"}, HotelFilter{City: "Paris"})
	await(t, bJ)
	await(t, bK)
	_, hotel, _ := bK.Details()

	hotels, err := s.SearchHotelsWithFriends("Jerry", HotelFilter{City: "Paris"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hotels {
		if h.Hno == hotel {
			found = true
			if len(h.FriendsBooked) != 1 || h.FriendsBooked[0] != "Kramer" {
				t.Errorf("friends at hotel %d = %v", h.Hno, h.FriendsBooked)
			}
		}
	}
	if !found {
		t.Fatalf("hotel %d missing from search: %v", hotel, hotels)
	}

	// LIKE name filter narrows results.
	named, err := s.SearchHotelsWithFriends("Jerry", HotelFilter{City: "Paris", NameLike: "%Paris 1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(named) != 1 || named[0].Name != "Hotel Paris 1" {
		t.Errorf("LIKE filter = %v", named)
	}
}

func TestSearchOrdersAndFilters(t *testing.T) {
	s := newService(t)
	flights, err := s.SearchFlights(FlightFilter{Dest: "Paris"})
	if err != nil {
		t.Fatal(err)
	}
	if len(flights) != 3 {
		t.Fatalf("flights = %v", flights)
	}
	if flights[0].Price > flights[1].Price || flights[1].Price > flights[2].Price {
		t.Error("not sorted by price")
	}
	hotels, err := s.SearchHotels(HotelFilter{City: "Paris", MaxPrice: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(hotels) != 1 || hotels[0][0].Int() != 8 {
		t.Errorf("hotels = %v", hotels)
	}
}

func TestSeedDemoCatalog(t *testing.T) {
	sys := core.NewSystem(core.Config{})
	if err := Seed(sys, SeedConfig{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("SELECT fno FROM Flights WHERE dest = 'Paris'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Errorf("Paris flights = %d, want 8 (default FlightsPerDest)", len(res.Rows))
	}
	res, err = sys.Query("SELECT hno FROM Hotels WHERE city = 'Rome'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Errorf("Rome hotels = %d", len(res.Rows))
	}
	// Seat pairs must be symmetric.
	res, err = sys.Query("SELECT seat1, seat2 FROM SeatPairs WHERE fno = 100")
	if err != nil {
		t.Fatal(err)
	}
	pairs := map[[2]int64]bool{}
	for _, r := range res.Rows {
		pairs[[2]int64{r[0].Int(), r[1].Int()}] = true
	}
	for p := range pairs {
		if !pairs[[2]int64{p[1], p[0]}] {
			t.Errorf("pair %v lacks mirror", p)
		}
	}
}

func TestBuildQueriesAreParseableAndEscape(t *testing.T) {
	// Names with quotes must not break the generated SQL.
	srcs := []string{
		BuildFlightQuery("O'Brien", []string{"D'Arcy"}, FlightFilter{Dest: "Paris", MaxPrice: 300, DayFrom: 2, DayTo: 9, Origin: "New York"}),
		BuildTripQuery("O'Brien", []string{"D'Arcy", "Mc'X"}, FlightFilter{Dest: "Rome"}, HotelFilter{City: "Rome", MaxPrice: 200}),
		BuildAdjacentSeatQuery("O'Brien", "D'Arcy", FlightFilter{Dest: "Paris"}),
		BuildDirectBooking("O'Brien", 122),
	}
	sys := core.NewSystem(core.Config{})
	if err := SeedFigure1(sys); err != nil {
		t.Fatal(err)
	}
	for _, src := range srcs {
		if _, err := sys.Submit(src, "test"); err != nil {
			t.Errorf("generated SQL rejected: %v\n%s", err, src)
		}
	}
}

func TestAccountOrdersPendingFirst(t *testing.T) {
	s := newService(t)
	b1, _ := s.BookDirect("Jerry", 122)
	await(t, b1)
	b2, _ := s.BookFlight("Jerry", []string{"Nobody"}, FlightFilter{Dest: "Paris"})
	_ = b2
	acct := s.Account("Jerry")
	if len(acct) != 2 {
		t.Fatalf("account = %v", acct)
	}
	if acct[0].Status != StatusPending || acct[1].Status != StatusConfirmed {
		t.Errorf("ordering: %v then %v", acct[0].Status, acct[1].Status)
	}
}
