package travel

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
)

// TestSimulationMixedWorkload is a day-in-the-life soak test: many users
// concurrently search, book in pairs and groups, book trips, book directly
// and cancel — with the coordinator's match-invariant checker armed. At the
// end, every confirmed coordination must be internally consistent and the
// books must balance.
func TestSimulationMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	sys := core.NewSystem(core.Config{Coord: coord.Options{
		UseIndex: true, GroundSmallestFirst: true, Seed: 1234, ValidateMatches: true,
	}})
	if err := Seed(sys, SeedConfig{Seed: 1234}); err != nil {
		t.Fatal(err)
	}
	svc := NewService(sys)

	const actors = 24
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		confirmed []*Booking
		canceled  int
	)
	record := func(b *Booking) {
		mu.Lock()
		confirmed = append(confirmed, b)
		mu.Unlock()
	}

	for a := 0; a < actors; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(a)))
			partner := fmt.Sprintf("sim%d", (a+1)%actors) // ring partner
			self := fmt.Sprintf("sim%d", a)
			for round := 0; round < 6; round++ {
				dest := Destinations[rng.Intn(len(Destinations))]
				switch rng.Intn(5) {
				case 0: // search (read-only)
					if _, err := svc.SearchFlightsWithFriends(self, FlightFilter{Dest: dest}); err != nil {
						t.Error(err)
						return
					}
				case 1: // direct booking
					flights, err := svc.SearchFlights(FlightFilter{Dest: dest})
					if err != nil || len(flights) == 0 {
						t.Errorf("search: %v", err)
						return
					}
					b, err := svc.BookDirect(self, flights[rng.Intn(len(flights))].Fno)
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := b.Await(10 * time.Second); err != nil {
						t.Error(err)
						return
					}
					record(b)
				case 2: // pair booking on a FIXED ring destination so partners agree
					ringDest := Destinations[((a+1)/2+round)%len(Destinations)]
					who := self + "_r" + fmt.Sprint(round)
					them := partner + "_r" + fmt.Sprint(round)
					// Each actor plays both halves to guarantee a match
					// regardless of scheduling.
					b1, err := svc.BookFlight(who, []string{them}, FlightFilter{Dest: ringDest})
					if err != nil {
						t.Error(err)
						return
					}
					b2, err := svc.BookFlight(them, []string{who}, FlightFilter{Dest: ringDest})
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := b1.Await(10 * time.Second); err != nil {
						t.Error(err)
						return
					}
					if _, err := b2.Await(10 * time.Second); err != nil {
						t.Error(err)
						return
					}
					f1, _, _ := b1.Details()
					f2, _, _ := b2.Details()
					if f1 != f2 {
						t.Errorf("ring pair split: %d vs %d", f1, f2)
						return
					}
					record(b1)
					record(b2)
				case 3: // trip with a same-round synthetic partner
					pa := fmt.Sprintf("trip%d_%d_a", a, round)
					pb := fmt.Sprintf("trip%d_%d_b", a, round)
					f := FlightFilter{Dest: dest}
					h := HotelFilter{City: dest}
					b1, err := svc.BookTrip(pa, []string{pb}, f, h)
					if err != nil {
						t.Error(err)
						return
					}
					b2, err := svc.BookTrip(pb, []string{pa}, f, h)
					if err != nil {
						t.Error(err)
						return
					}
					for _, b := range []*Booking{b1, b2} {
						if _, err := b.Await(10 * time.Second); err != nil {
							t.Error(err)
							return
						}
						record(b)
					}
				case 4: // submit-then-cancel (partner never arrives)
					ghost := fmt.Sprintf("ghost%d_%d", a, round)
					b, err := svc.BookFlight(self+"_c", []string{ghost}, FlightFilter{Dest: dest})
					if err != nil {
						t.Error(err)
						return
					}
					if svc.CancelBooking(b) {
						if st, _ := b.Await(5 * time.Second); st == StatusCanceled {
							mu.Lock()
							canceled++
							mu.Unlock()
						}
					}
				}
			}
		}(a)
	}
	wg.Wait()

	// Global consistency: every confirmed booking's flight appears in the
	// answer relation under its user.
	byTraveler := map[string][]int64{}
	for _, tup := range sys.Answers().Tuples(RelFlight) {
		byTraveler[tup[0].Str()] = append(byTraveler[tup[0].Str()], tup[1].Int())
	}
	for _, b := range confirmed {
		if b.Status() != StatusConfirmed {
			t.Errorf("booking %d recorded but %s", b.ID, b.Status())
			continue
		}
		fl, _, _ := b.Details()
		if fl == 0 {
			continue // hotel-only share of a trip (flight recorded too in our kinds)
		}
		found := false
		for _, got := range byTraveler[b.User] {
			if got == fl {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("booking %d (user %s, flight %d) missing from answer relation", b.ID, b.User, fl)
		}
	}
	st := sys.Coordinator().Stats()
	if st.Answered+st.Canceled != st.Submitted-uint64(sys.Coordinator().PendingCount()) {
		t.Errorf("books don't balance: %+v, pending %d", st, sys.Coordinator().PendingCount())
	}
	t.Logf("simulation: %d confirmed bookings, %d cancels, stats %+v", len(confirmed), canceled, st)
}
