package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/value"
)

// TestNoDirtyReads: a snapshot reader never observes uncommitted state — it
// scans concurrently with a writer holding an uncommitted insert (no
// blocking under MVCC) and must not see the in-flight row.
func TestNoDirtyReads(t *testing.T) {
	m, tbl := setup(t)
	writer := m.Begin()
	if _, err := writer.Insert("Flights", value.NewTuple(999, "Phantom")); err != nil {
		t.Fatal(err)
	}

	sawPhantomRow := make(chan bool, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		reader := m.Begin()
		defer reader.Rollback()
		found := false
		reader.Scan("Flights", func(_ storage.RowID, row value.Tuple) bool { //nolint:errcheck
			if row[0].Int() == 999 {
				found = true
			}
			return true
		})
		sawPhantomRow <- found
	}()

	// Let the reader run concurrently with the uncommitted writer, then abort.
	time.Sleep(30 * time.Millisecond)
	writer.Rollback()
	wg.Wait()
	if <-sawPhantomRow {
		t.Error("reader observed uncommitted (rolled back) insert")
	}
	if got := tbl.LookupEq([]int{0}, value.NewTuple(999)); len(got) != 0 {
		t.Error("phantom row survived rollback")
	}
}

// TestNoLostUpdates: concurrent read-modify-write increments under 2PL never
// lose updates.
func TestNoLostUpdates(t *testing.T) {
	cat := storage.NewCatalog()
	schema := value.NewSchema(value.Col("id", value.TypeInt), value.Col("n", value.TypeInt))
	tbl, _ := cat.Create("Counter", schema, "id")
	rowID, _ := tbl.Insert(value.NewTuple(1, 0))
	m := NewManager(cat)

	const workers, iters = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := m.RunAtomic(func(tx *Txn) error {
					// Exclusive first: read-modify-write under one lock.
					if err := tx.Lock("Counter", Exclusive); err != nil {
						return err
					}
					row, err := tx.Get("Counter", rowID)
					if err != nil {
						return err
					}
					return tx.Update("Counter", rowID, value.NewTuple(1, row[1].Int()+1))
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	row, _ := tbl.Get(rowID)
	if got := row[1].Int(); got != workers*iters {
		t.Errorf("counter = %d, want %d (lost updates)", got, workers*iters)
	}
}

// TestRepeatableReadWithinTxn: two scans inside one transaction see the same
// rows even while another writer inserts and commits in between — the
// transaction's pinned snapshot makes the second scan repeatable.
func TestRepeatableReadWithinTxn(t *testing.T) {
	m, _ := setup(t)
	reader := m.Begin()
	defer reader.Rollback()

	count := func() int {
		n := 0
		reader.Scan("Flights", func(storage.RowID, value.Tuple) bool { n++; return true }) //nolint:errcheck
		return n
	}
	before := count()

	writerDone := make(chan error, 1)
	go func() {
		writerDone <- m.RunAtomic(func(tx *Txn) error {
			_, err := tx.Insert("Flights", value.NewTuple(777, "Sneaky"))
			return err
		})
	}()
	time.Sleep(20 * time.Millisecond) // writer has committed underneath us by now
	if after := count(); after != before {
		t.Errorf("non-repeatable read: %d then %d", before, after)
	}
	reader.Rollback()
	if err := <-writerDone; err != nil {
		t.Fatalf("writer failed after reader finished: %v", err)
	}
}

// rowID returns the RowID of the flight with the given number.
func rowID(t *testing.T, tbl *storage.Table, fno int) storage.RowID {
	t.Helper()
	ids := tbl.LookupEq([]int{0}, value.NewTuple(fno))
	if len(ids) != 1 {
		t.Fatalf("flight %d: found %d rows", fno, len(ids))
	}
	return ids[0]
}

// TestFirstCommitterWins: two transactions with overlapping snapshots update
// the same row; the one that commits first wins, the other aborts with
// ErrWriteConflict (no waiting) and the conflict shows in the stats.
func TestFirstCommitterWins(t *testing.T) {
	m, tbl := setup(t)
	id := rowID(t, tbl, 122)
	base := m.Stats().WriteConflicts

	t1, t2 := m.Begin(), m.Begin()
	// Reading pins t2's snapshot before t1 commits — the overlap that makes
	// the later write a conflict rather than a plain sequential update.
	if _, err := t2.Get("Flights", id); err != nil {
		t.Fatal(err)
	}
	if err := t1.Update("Flights", id, value.NewTuple(122, "Berlin")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := t2.Update("Flights", id, value.NewTuple(122, "Madrid")); !errors.Is(err, storage.ErrWriteConflict) {
		t.Fatalf("second committer got %v, want ErrWriteConflict", err)
	}
	t2.Rollback() //nolint:errcheck
	if got := m.Stats().WriteConflicts; got != base+1 {
		t.Errorf("WriteConflicts = %d, want %d", got, base+1)
	}
	if row, _ := tbl.Get(id); row[1].Str() != "Berlin" {
		t.Errorf("row = %v, want the first committer's update", row)
	}
}

// TestWriteSkewAllowed pins snapshot isolation's known anomaly as ALLOWED:
// two transactions each read both rows of an invariant and write disjoint
// rows; both commit. Serializability would abort one — SI does not, and this
// reproduction deliberately stops at SI (first-committer-wins on overlapping
// write sets only).
func TestWriteSkewAllowed(t *testing.T) {
	m, tbl := setup(t)
	a, b := rowID(t, tbl, 122), rowID(t, tbl, 123)

	t1, t2 := m.Begin(), m.Begin()
	for _, tx := range []*Txn{t1, t2} {
		if _, err := tx.Get("Flights", a); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Get("Flights", b); err != nil {
			t.Fatal(err)
		}
	}
	// Disjoint write sets: t1 → row a, t2 → row b. The per-table write lock
	// serializes the writes themselves, but neither sees a w-w conflict.
	if err := t1.Update("Flights", a, value.NewTuple(122, "SkewA")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update("Flights", b, value.NewTuple(123, "SkewB")); err != nil {
		t.Fatalf("disjoint write aborted: %v (write skew must be allowed under SI)", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	ra, _ := tbl.Get(a)
	rb, _ := tbl.Get(b)
	if ra[1].Str() != "SkewA" || rb[1].Str() != "SkewB" {
		t.Errorf("rows = %v / %v, want both skewed writes committed", ra, rb)
	}
}

// TestSnapshotReadDuringUncommittedWrite is the acceptance pin of the MVCC
// change: while a writer holds an exclusive lock AND uncommitted updates on a
// table, a concurrent reader completes immediately against its snapshot and
// sees the pre-image. Under the old shared-lock protocol this read would
// block until the writer finished.
func TestSnapshotReadDuringUncommittedWrite(t *testing.T) {
	m, tbl := setup(t)
	id := rowID(t, tbl, 122)

	w := m.Begin()
	if err := w.Update("Flights", id, value.NewTuple(122, "Berlin")); err != nil {
		t.Fatal(err)
	}

	r := m.Begin()
	start := time.Now()
	row, err := r.Get("Flights", id)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("snapshot read under uncommitted writer: %v", err)
	}
	if row[1].Str() != "Paris" {
		t.Fatalf("read %q under uncommitted writer, want pre-image Paris", row[1].Str())
	}
	if elapsed > time.Second {
		t.Errorf("snapshot read took %s; it must not wait for the writer", elapsed)
	}
	n := 0
	if err := r.Scan("Flights", func(storage.RowID, value.Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("scan under uncommitted writer saw %d rows, want 3", n)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if row, _ := tbl.Get(id); row[1].Str() != "Berlin" {
		t.Errorf("post-commit row = %v", row)
	}
}

// TestReadOnlyTxnNeverAbortsOrWaits: read-only transactions running against
// continuous update churn never time out, never conflict, and always see a
// consistent full table.
func TestReadOnlyTxnNeverAbortsOrWaits(t *testing.T) {
	m, tbl := setup(t)
	id := rowID(t, tbl, 122)
	base := m.Stats()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			err := m.RunAtomic(func(tx *Txn) error {
				return tx.Update("Flights", id, value.NewTuple(122, fmt.Sprintf("city%d", i)))
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	readers := 0
	for deadline := time.Now().Add(200 * time.Millisecond); time.Now().Before(deadline); readers++ {
		r := m.Begin()
		if _, err := r.Get("Flights", id); err != nil {
			t.Fatalf("read-only txn errored: %v", err)
		}
		n := 0
		if err := r.Scan("Flights", func(storage.RowID, value.Tuple) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("read-only scan saw %d rows, want 3", n)
		}
		if err := r.Commit(); err != nil {
			t.Fatalf("read-only commit: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if readers == 0 {
		t.Fatal("no reader iterations completed")
	}
	st := m.Stats()
	if st.Timeouts != base.Timeouts {
		t.Errorf("lock timeouts rose %d → %d during a read-only run", base.Timeouts, st.Timeouts)
	}
	if _, err := tbl.Get(id); err != nil {
		t.Fatal(err)
	}
}
