package txn

import (
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/value"
)

// TestNoDirtyReads: a reader blocked by a writer's exclusive lock never
// observes uncommitted state — after the writer rolls back, the reader sees
// the original rows.
func TestNoDirtyReads(t *testing.T) {
	m, tbl := setup(t)
	writer := m.Begin()
	if _, err := writer.Insert("Flights", value.NewTuple(999, "Phantom")); err != nil {
		t.Fatal(err)
	}

	sawPhantomRow := make(chan bool, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		reader := m.Begin()
		defer reader.Rollback()
		found := false
		reader.Scan("Flights", func(_ storage.RowID, row value.Tuple) bool { //nolint:errcheck
			if row[0].Int() == 999 {
				found = true
			}
			return true
		})
		sawPhantomRow <- found
	}()

	// Give the reader time to block on the writer's lock, then abort.
	time.Sleep(30 * time.Millisecond)
	writer.Rollback()
	wg.Wait()
	if <-sawPhantomRow {
		t.Error("reader observed uncommitted (rolled back) insert")
	}
	if got := tbl.LookupEq([]int{0}, value.NewTuple(999)); len(got) != 0 {
		t.Error("phantom row survived rollback")
	}
}

// TestNoLostUpdates: concurrent read-modify-write increments under 2PL never
// lose updates.
func TestNoLostUpdates(t *testing.T) {
	cat := storage.NewCatalog()
	schema := value.NewSchema(value.Col("id", value.TypeInt), value.Col("n", value.TypeInt))
	tbl, _ := cat.Create("Counter", schema, "id")
	rowID, _ := tbl.Insert(value.NewTuple(1, 0))
	m := NewManager(cat)

	const workers, iters = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := m.RunAtomic(func(tx *Txn) error {
					// Exclusive first: read-modify-write under one lock.
					if err := tx.Lock("Counter", Exclusive); err != nil {
						return err
					}
					row, err := tx.Get("Counter", rowID)
					if err != nil {
						return err
					}
					return tx.Update("Counter", rowID, value.NewTuple(1, row[1].Int()+1))
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	row, _ := tbl.Get(rowID)
	if got := row[1].Int(); got != workers*iters {
		t.Errorf("counter = %d, want %d (lost updates)", got, workers*iters)
	}
}

// TestRepeatableReadWithinTxn: two scans inside one transaction see the same
// rows even while another writer is trying to insert (it blocks on our S
// lock until we finish).
func TestRepeatableReadWithinTxn(t *testing.T) {
	m, _ := setup(t)
	reader := m.Begin()
	defer reader.Rollback()

	count := func() int {
		n := 0
		reader.Scan("Flights", func(storage.RowID, value.Tuple) bool { n++; return true }) //nolint:errcheck
		return n
	}
	before := count()

	writerDone := make(chan error, 1)
	go func() {
		writerDone <- m.RunAtomic(func(tx *Txn) error {
			_, err := tx.Insert("Flights", value.NewTuple(777, "Sneaky"))
			return err
		})
	}()
	time.Sleep(20 * time.Millisecond) // writer now blocked on our shared lock
	if after := count(); after != before {
		t.Errorf("non-repeatable read: %d then %d", before, after)
	}
	reader.Rollback()
	if err := <-writerDone; err != nil {
		t.Fatalf("writer failed after reader finished: %v", err)
	}
}
