// Package txn provides transactions over the storage engine: snapshot
// isolation for reads, strict two-phase locking on writes, and an undo log
// for rollback.
//
// Reads resolve against a per-transaction snapshot pinned from the
// catalog's MVCC commit clock, so they never take table locks, never block
// writers, and never observe uncommitted or mid-commit state. Writes still
// acquire exclusive table locks (serializing writers per table) and are
// checked first-committer-wins against the snapshot: a row changed by a
// transaction that committed after the snapshot aborts the writer with
// storage.ErrWriteConflict, which RunAtomic retries on a fresh snapshot.
// The shared lock mode survives only behind the Manager.LockReads
// compatibility knob (benchmarking the old lock-table design).
//
// The coordination component relies on this layer for the paper's central
// atomicity guarantee: when a set of entangled queries matches, their answer
// tuples and any accompanying updates are installed in ONE transaction, so
// either every query in the match observes the coordinated outcome or none
// does — under MVCC the whole match becomes visible at a single commit
// timestamp. Write-write deadlocks are resolved by lock-wait timeouts (the
// victim aborts and the caller retries), and by offering sorted bulk
// acquisition for callers — like the coordinator — that know their lock set
// up front, which makes them deadlock-free by the ordered-resource argument.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// LockMode distinguishes shared (read) from exclusive (write) table locks.
type LockMode uint8

// Lock modes.
const (
	Shared LockMode = iota
	Exclusive
)

func (m LockMode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// ErrLockTimeout is returned when a lock could not be acquired within the
// manager's timeout; the transaction should abort and retry. Timeouts double
// as the deadlock-resolution mechanism.
var ErrLockTimeout = errors.New("txn: lock wait timeout (possible deadlock)")

// ErrTxnDone is returned when using a transaction after Commit or Rollback.
var ErrTxnDone = errors.New("txn: transaction already finished")

// tableLock is a writer-priority reader/writer lock supporting
// per-transaction reentrancy and shared→exclusive upgrade when the holder is
// the only reader. A parked exclusive request blocks NEW shared grants
// (reentrant re-acquisition still succeeds), so a continuous stream of
// readers cannot starve writers indefinitely.
type tableLock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	readers map[uint64]int // txn id → hold count
	writer  uint64         // txn id holding exclusive, 0 if none
	wcount  int            // reentrant exclusive hold count
	xwait   int            // exclusive acquisitions currently parked
}

func newTableLock() *tableLock {
	l := &tableLock{readers: make(map[uint64]int)}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// acquire blocks until the lock is granted to txn id in the given mode or the
// deadline passes. It supports reentrant acquisition and upgrades.
func (l *tableLock) acquire(id uint64, mode LockMode, deadline time.Time) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if mode == Exclusive {
		l.xwait++
		defer func() {
			l.xwait--
			// Our departure (granted or timed out) may unblock parked readers.
			l.cond.Broadcast()
		}()
	}

	// A timer wakes all waiters periodically so deadline checks make progress
	// without requiring per-waiter timers on the happy path.
	for {
		if l.granted(id, mode) {
			l.take(id, mode)
			return nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return ErrLockTimeout
		}
		waitWithWake(l.cond, deadline)
	}
}

// waitWithWake waits on cond, arranging a broadcast at the deadline so the
// waiter can observe timeout.
func waitWithWake(cond *sync.Cond, deadline time.Time) {
	if deadline.IsZero() {
		cond.Wait()
		return
	}
	d := time.Until(deadline)
	if d <= 0 {
		return
	}
	t := time.AfterFunc(d, cond.Broadcast)
	cond.Wait()
	t.Stop()
}

// granted reports whether txn id may take the lock in mode right now.
// Caller holds l.mu.
func (l *tableLock) granted(id uint64, mode LockMode) bool {
	switch mode {
	case Shared:
		if l.writer == id {
			return true // X subsumes S
		}
		if l.writer != 0 {
			return false
		}
		if l.xwait > 0 {
			// Writer priority: a parked X request fences off new readers, but
			// a txn already holding S may re-enter (it cannot be the blocker
			// of the parked X and must not deadlock on itself).
			_, held := l.readers[id]
			return held
		}
		return true
	case Exclusive:
		if l.writer == id {
			return true // reentrant
		}
		if l.writer != 0 {
			return false
		}
		// Upgrade allowed when we are the sole reader; fresh X needs no readers.
		switch len(l.readers) {
		case 0:
			return true
		case 1:
			_, sole := l.readers[id]
			return sole
		default:
			return false
		}
	}
	return false
}

// take records the grant. Caller holds l.mu and granted() was true.
func (l *tableLock) take(id uint64, mode LockMode) {
	switch mode {
	case Shared:
		if l.writer == id {
			l.wcount++ // S under X: count as another X hold for symmetric release
			return
		}
		l.readers[id]++
	case Exclusive:
		if l.writer == id {
			l.wcount++
			return
		}
		// Upgrading sole reader: drop read holds into the write hold.
		delete(l.readers, id)
		l.writer = id
		l.wcount = 1
	}
}

// release drops one hold of txn id. Strict 2PL releases everything at
// commit/abort, so release is only called from releaseAll.
func (l *tableLock) releaseAll(id uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.writer == id {
		l.writer = 0
		l.wcount = 0
	}
	delete(l.readers, id)
	l.cond.Broadcast()
}

// holds reports whether txn id currently holds the lock in at least mode.
func (l *tableLock) holds(id uint64, mode LockMode) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.writer == id {
		return true
	}
	if mode == Shared {
		_, ok := l.readers[id]
		return ok
	}
	return false
}

// lockManager hands out tableLocks by canonical table name.
type lockManager struct {
	mu    sync.Mutex
	locks map[string]*tableLock
}

func newLockManager() *lockManager {
	return &lockManager{locks: make(map[string]*tableLock)}
}

func (lm *lockManager) get(table string) *tableLock {
	key := strings.ToLower(table)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	l := lm.locks[key]
	if l == nil {
		l = newTableLock()
		lm.locks[key] = l
	}
	return l
}

// sortedUnique returns the canonicalized, deduplicated, sorted table names —
// the global acquisition order that makes bulk locking deadlock-free.
func sortedUnique(tables []string) []string {
	seen := make(map[string]struct{}, len(tables))
	out := make([]string, 0, len(tables))
	for _, t := range tables {
		k := strings.ToLower(t)
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func lockDesc(table string, mode LockMode) string {
	return fmt.Sprintf("%s[%s]", table, mode)
}
