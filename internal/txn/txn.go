package txn

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
	"repro/internal/value"
)

// Manager creates transactions over a catalog. One Manager guards one
// database instance.
type Manager struct {
	catalog *storage.Catalog
	locks   *lockManager
	nextID  atomic.Uint64

	// LockTimeout bounds each lock wait; expiring aborts the acquisition with
	// ErrLockTimeout (deadlock resolution). Zero means wait forever.
	LockTimeout time.Duration

	stats struct {
		committed atomic.Uint64
		aborted   atomic.Uint64
		timeouts  atomic.Uint64
	}
}

// NewManager returns a Manager over the catalog with a 2s default lock
// timeout.
func NewManager(cat *storage.Catalog) *Manager {
	return &Manager{catalog: cat, locks: newLockManager(), LockTimeout: 2 * time.Second}
}

// Catalog exposes the underlying catalog (reads outside any transaction are
// physically consistent but not isolated).
func (m *Manager) Catalog() *storage.Catalog { return m.catalog }

// Stats reports committed/aborted/timeout counters.
func (m *Manager) Stats() (committed, aborted, timeouts uint64) {
	return m.stats.committed.Load(), m.stats.aborted.Load(), m.stats.timeouts.Load()
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	t := &Txn{mgr: m, id: m.nextID.Add(1)}
	t.held = t.heldBuf[:0]
	return t
}

// heldLock is one acquired table lock.
type heldLock struct {
	name string
	mode LockMode
}

// undoRecord reverses one mutation.
type undoRecord struct {
	table  string
	kind   uint8 // 0 insert (undo = delete), 1 delete (undo = restore), 2 update (undo = write back)
	id     storage.RowID
	before value.Tuple
}

// Txn is a single transaction: strict 2PL plus an undo log. A Txn is not
// safe for concurrent use by multiple goroutines (like database/sql.Tx).
type Txn struct {
	mgr *Manager
	id  uint64
	// held records the strongest mode held per canonical table name. A
	// statement touches a handful of tables, so a linear slice beats a map —
	// and, backed by the inline buffer, costs no allocation at all.
	held    []heldLock
	heldBuf [4]heldLock
	undo    []undoRecord
	done    bool

	mu sync.Mutex // guards done for the rare cross-goroutine Rollback
}

// ID returns the transaction id (diagnostics only).
func (t *Txn) ID() uint64 { return t.id }

func (t *Txn) deadline() time.Time {
	if t.mgr.LockTimeout == 0 {
		return time.Time{}
	}
	return time.Now().Add(t.mgr.LockTimeout)
}

// Lock acquires a table lock in the given mode (idempotent; upgrades when a
// stronger mode is requested).
func (t *Txn) Lock(table string, mode LockMode) error {
	if t.done {
		return ErrTxnDone
	}
	return t.lockCanonical(strings.ToLower(table), table, mode)
}

// LockCanonical is Lock for an already-canonical (lower-case) table name —
// prepared plans store canonical names, keeping ToLower off the per-
// execution path.
func (t *Txn) LockCanonical(key string, mode LockMode) error {
	if t.done {
		return ErrTxnDone
	}
	return t.lockCanonical(key, key, mode)
}

func (t *Txn) lockCanonical(key, display string, mode LockMode) error {
	hi := -1
	for i := range t.held {
		if t.held[i].name == key {
			if cur := t.held[i].mode; cur == Exclusive || cur == mode {
				return nil
			}
			hi = i
			break
		}
	}
	if err := t.mgr.locks.get(key).acquire(t.id, mode, t.deadline()); err != nil {
		t.mgr.stats.timeouts.Add(1)
		return fmt.Errorf("%w: %s", err, lockDesc(display, mode))
	}
	if hi >= 0 {
		if mode == Exclusive && t.held[hi].mode == Shared {
			t.held[hi].mode = mode
		}
	} else {
		t.held = append(t.held, heldLock{name: key, mode: mode})
	}
	return nil
}

// LockAll acquires locks on every (table, mode) pair in a canonical global
// order, which makes concurrent LockAll callers deadlock-free with respect to
// each other. Exclusive wins when a table appears with both modes.
func (t *Txn) LockAll(shared, exclusive []string) error {
	modes := make(map[string]LockMode)
	for _, s := range shared {
		modes[strings.ToLower(s)] = Shared
	}
	for _, x := range exclusive {
		modes[strings.ToLower(x)] = Exclusive
	}
	for _, name := range sortedUnique(append(append([]string{}, shared...), exclusive...)) {
		if err := t.Lock(name, modes[name]); err != nil {
			return err
		}
	}
	return nil
}

// Holds reports whether the txn holds at least the given mode on table.
func (t *Txn) Holds(table string, mode LockMode) bool {
	return t.mgr.locks.get(table).holds(t.id, mode)
}

func (t *Txn) table(name string) (*storage.Table, error) {
	return t.mgr.catalog.Get(name)
}

// Insert inserts a tuple under an exclusive lock and logs the undo.
func (t *Txn) Insert(table string, tup value.Tuple) (storage.RowID, error) {
	if err := t.Lock(table, Exclusive); err != nil {
		return 0, err
	}
	tbl, err := t.table(table)
	if err != nil {
		return 0, err
	}
	id, err := tbl.Insert(tup)
	if err != nil {
		return 0, err
	}
	t.undo = append(t.undo, undoRecord{table: table, kind: 0, id: id})
	return id, nil
}

// Delete removes a row under an exclusive lock and logs the undo.
func (t *Txn) Delete(table string, id storage.RowID) error {
	if err := t.Lock(table, Exclusive); err != nil {
		return err
	}
	tbl, err := t.table(table)
	if err != nil {
		return err
	}
	old, err := tbl.Delete(id)
	if err != nil {
		return err
	}
	t.undo = append(t.undo, undoRecord{table: table, kind: 1, id: id, before: old})
	return nil
}

// Update replaces a row under an exclusive lock and logs the undo.
func (t *Txn) Update(table string, id storage.RowID, tup value.Tuple) error {
	if err := t.Lock(table, Exclusive); err != nil {
		return err
	}
	tbl, err := t.table(table)
	if err != nil {
		return err
	}
	old, err := tbl.Update(id, tup)
	if err != nil {
		return err
	}
	t.undo = append(t.undo, undoRecord{table: table, kind: 2, id: id, before: old})
	return nil
}

// Scan iterates the table under (at least) a shared lock.
func (t *Txn) Scan(table string, fn func(storage.RowID, value.Tuple) bool) error {
	if err := t.Lock(table, Shared); err != nil {
		return err
	}
	tbl, err := t.table(table)
	if err != nil {
		return err
	}
	tbl.Scan(fn)
	return nil
}

// Get reads one row under a shared lock.
func (t *Txn) Get(table string, id storage.RowID) (value.Tuple, error) {
	if err := t.Lock(table, Shared); err != nil {
		return nil, err
	}
	tbl, err := t.table(table)
	if err != nil {
		return nil, err
	}
	return tbl.Get(id)
}

// Commit releases all locks and discards the undo log.
func (t *Txn) Commit() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return ErrTxnDone
	}
	t.finish()
	t.mgr.stats.committed.Add(1)
	return nil
}

// Rollback undoes every mutation in reverse order, then releases locks.
// Rolling back a finished transaction is a no-op (so `defer tx.Rollback()` is
// safe, as with database/sql).
func (t *Txn) Rollback() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return nil
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		r := t.undo[i]
		tbl, err := t.mgr.catalog.Get(r.table)
		if err != nil {
			continue // table dropped mid-txn; nothing to restore into
		}
		switch r.kind {
		case 0:
			tbl.Delete(r.id) //nolint:errcheck // best-effort undo
		case 1:
			tbl.RestoreAt(r.id, r.before) //nolint:errcheck
		case 2:
			tbl.Update(r.id, r.before) //nolint:errcheck
		}
	}
	t.finish()
	t.mgr.stats.aborted.Add(1)
	return nil
}

// finish releases all locks. Caller holds t.mu.
func (t *Txn) finish() {
	for _, h := range t.held {
		t.mgr.locks.get(h.name).releaseAll(t.id)
	}
	t.held = nil
	t.undo = nil
	t.done = true
}

// RunAtomic runs fn in a transaction, committing on nil and rolling back on
// error or panic. ErrLockTimeout aborts are retried up to three times, which
// resolves ordinary two-party deadlocks.
func (m *Manager) RunAtomic(fn func(*Txn) error) error {
	const retries = 3
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		err = m.runOnce(fn)
		if err == nil || !isTimeout(err) {
			return err
		}
	}
	return err
}

func isTimeout(err error) bool { return errors.Is(err, ErrLockTimeout) }

func (m *Manager) runOnce(fn func(*Txn) error) (err error) {
	tx := m.Begin()
	defer func() {
		if p := recover(); p != nil {
			tx.Rollback()
			panic(p)
		}
	}()
	if err = fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}
