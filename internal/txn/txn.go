package txn

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
	"repro/internal/value"
)

// Manager creates transactions over a catalog. One Manager guards one
// database instance.
type Manager struct {
	catalog *storage.Catalog
	locks   *lockManager
	nextID  atomic.Uint64

	// LockTimeout bounds each lock wait; expiring aborts the acquisition with
	// ErrLockTimeout (deadlock resolution). Zero means wait forever.
	LockTimeout time.Duration

	// LockReads restores the pre-MVCC behavior of taking shared table locks
	// for reads. Under snapshot isolation reads resolve against a pinned
	// snapshot and shared locks are pure overhead, so this is off by default;
	// it exists to benchmark the lock-table design against the snapshot path
	// (BenchmarkE15_SnapshotReaders) and as an escape hatch.
	LockReads bool

	stats struct {
		committed atomic.Uint64
		aborted   atomic.Uint64
		timeouts  atomic.Uint64
	}
}

// NewManager returns a Manager over the catalog with a 2s default lock
// timeout.
func NewManager(cat *storage.Catalog) *Manager {
	return &Manager{catalog: cat, locks: newLockManager(), LockTimeout: 2 * time.Second}
}

// Catalog exposes the underlying catalog (reads outside any transaction are
// physically consistent but not isolated).
func (m *Manager) Catalog() *storage.Catalog { return m.catalog }

// Stats is a snapshot of the manager's cumulative transaction counters.
type Stats struct {
	Committed      uint64 // transactions committed
	Aborted        uint64 // transactions rolled back (explicit or error)
	Timeouts       uint64 // lock-wait timeouts (deadlock resolution)
	WriteConflicts uint64 // first-committer-wins aborts (storage.ErrWriteConflict)
	GCReclaimed    uint64 // tuple versions pruned by the MVCC garbage collector
}

// Stats reports the cumulative transaction counters, including the MVCC
// conflict and garbage-collection counters kept by the catalog.
func (m *Manager) Stats() Stats {
	return Stats{
		Committed:      m.stats.committed.Load(),
		Aborted:        m.stats.aborted.Load(),
		Timeouts:       m.stats.timeouts.Load(),
		WriteConflicts: m.catalog.Conflicts(),
		GCReclaimed:    m.catalog.GCReclaimed(),
	}
}

// StartGC launches a background loop that prunes version chains against the
// oldest-active-snapshot watermark every interval. It returns a stop
// function (idempotent) that halts the loop and runs one final collection.
func (m *Manager) StartGC(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				m.catalog.GC()
			case <-done:
				return
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			m.catalog.GC()
		})
	}
}

// Begin starts a transaction. Its snapshot is pinned lazily — at the first
// read, or at the first write after its exclusive lock is granted — so a
// transaction that waits on a lock is not penalized with an old snapshot
// (and a single-statement write can never lose first-committer-wins to a
// commit that happened before it even started).
func (m *Manager) Begin() *Txn {
	t := &Txn{mgr: m, id: m.nextID.Add(1)}
	t.held = t.heldBuf[:0]
	return t
}

// heldLock is one acquired table lock.
type heldLock struct {
	name string
	mode LockMode
}

// undoRecord reverses one mutation.
type undoRecord struct {
	table  string
	kind   uint8 // 0 insert (undo = delete), 1 delete (undo = restore), 2 update (undo = write back)
	id     storage.RowID
	before value.Tuple
}

// Txn is a single transaction: snapshot-isolated reads plus strict 2PL on
// writes with an undo log. A Txn is not safe for concurrent use by multiple
// goroutines (like database/sql.Tx).
type Txn struct {
	mgr *Manager
	id  uint64
	// held records the strongest mode held per canonical table name. A
	// statement touches a handful of tables, so a linear slice beats a map —
	// and, backed by the inline buffer, costs no allocation at all.
	held    []heldLock
	heldBuf [4]heldLock
	undo    []undoRecord
	done    bool

	// MVCC state: the pinned snapshot (registered with the catalog so GC
	// respects it) and the storage writer carrying uncommitted versions.
	snapTS  uint64
	pinned  bool
	snapRef storage.SnapRef
	w       *storage.Writer

	mu sync.Mutex // guards done for the rare cross-goroutine Rollback
}

// ID returns the transaction id (diagnostics only).
func (t *Txn) ID() uint64 { return t.id }

// Snapshot returns the transaction's read snapshot, pinning it on first use.
// Every read through the transaction resolves against this one timestamp, so
// reads are repeatable and never block on (or observe) concurrent writers;
// the transaction's own uncommitted writes remain visible to it.
func (t *Txn) Snapshot() storage.Snapshot {
	if !t.pinned {
		t.snapTS = t.mgr.catalog.PinSnapshot(&t.snapRef)
		t.pinned = true
		if t.w != nil {
			t.w.SetSnapshot(t.snapTS)
		}
	}
	return storage.SnapshotAt(t.snapTS, t.w)
}

// writer returns the transaction's storage writer, creating it (and pinning
// the snapshot) on the first write. Callers must already hold the exclusive
// table lock, so pinning here — after the lock grant — keeps the snapshot as
// fresh as possible and avoids spurious first-committer-wins aborts for
// lock-then-write transactions.
func (t *Txn) writer() *storage.Writer {
	if t.w == nil {
		t.w = t.mgr.catalog.NewWriter()
		t.Snapshot() // pin now (no-op if already pinned) and attach below
		t.w.SetSnapshot(t.snapTS)
	}
	return t.w
}

func (t *Txn) deadline() time.Time {
	if t.mgr.LockTimeout == 0 {
		return time.Time{}
	}
	return time.Now().Add(t.mgr.LockTimeout)
}

// Lock acquires a table lock in the given mode (idempotent; upgrades when a
// stronger mode is requested). Under snapshot isolation shared locks are a
// no-op — reads never block writers or vice versa — unless the manager's
// LockReads compatibility knob is set; exclusive locks still serialize
// writers per table.
func (t *Txn) Lock(table string, mode LockMode) error {
	if t.done {
		return ErrTxnDone
	}
	if mode == Shared && !t.mgr.LockReads {
		return nil
	}
	return t.lockCanonical(strings.ToLower(table), table, mode)
}

// LockCanonical is Lock for an already-canonical (lower-case) table name —
// prepared plans store canonical names, keeping ToLower off the per-
// execution path.
func (t *Txn) LockCanonical(key string, mode LockMode) error {
	if t.done {
		return ErrTxnDone
	}
	if mode == Shared && !t.mgr.LockReads {
		return nil
	}
	return t.lockCanonical(key, key, mode)
}

func (t *Txn) lockCanonical(key, display string, mode LockMode) error {
	hi := -1
	for i := range t.held {
		if t.held[i].name == key {
			if cur := t.held[i].mode; cur == Exclusive || cur == mode {
				return nil
			}
			hi = i
			break
		}
	}
	if err := t.mgr.locks.get(key).acquire(t.id, mode, t.deadline()); err != nil {
		t.mgr.stats.timeouts.Add(1)
		return fmt.Errorf("%w: %s", err, lockDesc(display, mode))
	}
	if hi >= 0 {
		if mode == Exclusive && t.held[hi].mode == Shared {
			t.held[hi].mode = mode
		}
	} else {
		t.held = append(t.held, heldLock{name: key, mode: mode})
	}
	return nil
}

// LockAll acquires locks on every (table, mode) pair in a canonical global
// order, which makes concurrent LockAll callers deadlock-free with respect to
// each other. Exclusive wins when a table appears with both modes.
func (t *Txn) LockAll(shared, exclusive []string) error {
	modes := make(map[string]LockMode)
	for _, s := range shared {
		modes[strings.ToLower(s)] = Shared
	}
	for _, x := range exclusive {
		modes[strings.ToLower(x)] = Exclusive
	}
	for _, name := range sortedUnique(append(append([]string{}, shared...), exclusive...)) {
		if err := t.Lock(name, modes[name]); err != nil {
			return err
		}
	}
	return nil
}

// Holds reports whether the txn holds at least the given mode on table.
func (t *Txn) Holds(table string, mode LockMode) bool {
	return t.mgr.locks.get(table).holds(t.id, mode)
}

func (t *Txn) table(name string) (*storage.Table, error) {
	return t.mgr.catalog.Get(name)
}

// Insert inserts a tuple under an exclusive lock and logs the undo. The new
// version is invisible to other transactions until commit.
func (t *Txn) Insert(table string, tup value.Tuple) (storage.RowID, error) {
	if err := t.Lock(table, Exclusive); err != nil {
		return 0, err
	}
	tbl, err := t.table(table)
	if err != nil {
		return 0, err
	}
	id, err := tbl.InsertW(t.writer(), tup)
	if err != nil {
		return 0, err
	}
	t.undo = append(t.undo, undoRecord{table: table, kind: 0, id: id})
	return id, nil
}

// Delete removes a row under an exclusive lock and logs the undo.
func (t *Txn) Delete(table string, id storage.RowID) error {
	if err := t.Lock(table, Exclusive); err != nil {
		return err
	}
	tbl, err := t.table(table)
	if err != nil {
		return err
	}
	old, err := tbl.DeleteW(t.writer(), id)
	if err != nil {
		return err
	}
	t.undo = append(t.undo, undoRecord{table: table, kind: 1, id: id, before: old})
	return nil
}

// Update replaces a row under an exclusive lock and logs the undo.
func (t *Txn) Update(table string, id storage.RowID, tup value.Tuple) error {
	if err := t.Lock(table, Exclusive); err != nil {
		return err
	}
	tbl, err := t.table(table)
	if err != nil {
		return err
	}
	old, err := tbl.UpdateW(t.writer(), id, tup)
	if err != nil {
		return err
	}
	t.undo = append(t.undo, undoRecord{table: table, kind: 2, id: id, before: old})
	return nil
}

// Scan iterates the table against the transaction's snapshot. It takes no
// lock (unless LockReads is set): the snapshot guarantees a consistent,
// repeatable view while writers proceed underneath.
func (t *Txn) Scan(table string, fn func(storage.RowID, value.Tuple) bool) error {
	if err := t.Lock(table, Shared); err != nil {
		return err
	}
	tbl, err := t.table(table)
	if err != nil {
		return err
	}
	tbl.ScanAt(t.Snapshot(), fn)
	return nil
}

// Get reads one row against the transaction's snapshot.
func (t *Txn) Get(table string, id storage.RowID) (value.Tuple, error) {
	if err := t.Lock(table, Shared); err != nil {
		return nil, err
	}
	tbl, err := t.table(table)
	if err != nil {
		return nil, err
	}
	return tbl.GetAt(t.Snapshot(), id)
}

// Commit publishes the transaction's writes at one commit timestamp (making
// every touched row visible atomically), releases locks, and unpins the
// snapshot.
func (t *Txn) Commit() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return ErrTxnDone
	}
	if t.w != nil {
		t.w.Commit()
	}
	t.finish()
	t.mgr.stats.committed.Add(1)
	return nil
}

// Rollback undoes every mutation in reverse order, then releases locks.
// The undo runs through the transaction's own writer and is then committed:
// the forward and compensating versions cancel out (begin == end), so no
// snapshot ever observes the aborted intermediates, while the write-ahead
// log keeps its pure physical-redo shape (forward operations followed by
// compensating ones). Rolling back a finished transaction is a no-op (so
// `defer tx.Rollback()` is safe, as with database/sql).
func (t *Txn) Rollback() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return nil
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		r := t.undo[i]
		tbl, err := t.mgr.catalog.Get(r.table)
		if err != nil {
			continue // table dropped mid-txn; nothing to restore into
		}
		switch r.kind {
		case 0:
			tbl.DeleteW(t.w, r.id) //nolint:errcheck // best-effort undo
		case 1:
			tbl.RestoreAtW(t.w, r.id, r.before) //nolint:errcheck
		case 2:
			tbl.UpdateW(t.w, r.id, r.before) //nolint:errcheck
		}
	}
	if t.w != nil {
		t.w.Commit() // publish forward+compensating pairs; net effect nil
	}
	t.finish()
	t.mgr.stats.aborted.Add(1)
	return nil
}

// finish releases all locks and unpins the snapshot. Caller holds t.mu.
func (t *Txn) finish() {
	for _, h := range t.held {
		t.mgr.locks.get(h.name).releaseAll(t.id)
	}
	if t.pinned {
		t.mgr.catalog.UnpinSnapshot(&t.snapRef)
		t.pinned = false
	}
	t.held = nil
	t.undo = nil
	t.w = nil
	t.done = true
}

// RunAtomic runs fn in a transaction, committing on nil and rolling back on
// error or panic. ErrLockTimeout aborts (ordinary two-party deadlocks) and
// first-committer-wins write conflicts are retried up to three times; the
// retry re-pins a fresh snapshot, so a conflict whose winner has committed
// does not recur.
func (m *Manager) RunAtomic(fn func(*Txn) error) error {
	const retries = 3
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		err = m.runOnce(fn)
		if err == nil || !isRetryable(err) {
			return err
		}
	}
	return err
}

func isRetryable(err error) bool {
	return errors.Is(err, ErrLockTimeout) || errors.Is(err, storage.ErrWriteConflict)
}

func (m *Manager) runOnce(fn func(*Txn) error) (err error) {
	tx := m.Begin()
	defer func() {
		if p := recover(); p != nil {
			tx.Rollback()
			panic(p)
		}
	}()
	if err = fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}
