package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/value"
)

func setup(t *testing.T) (*Manager, *storage.Table) {
	t.Helper()
	cat := storage.NewCatalog()
	schema := value.NewSchema(value.Col("fno", value.TypeInt), value.Col("dest", value.TypeString))
	tbl, err := cat.Create("Flights", schema, "fno")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]any{{122, "Paris"}, {123, "Paris"}, {136, "Rome"}} {
		if _, err := tbl.Insert(value.NewTuple(r[0], r[1])); err != nil {
			t.Fatal(err)
		}
	}
	return NewManager(cat), tbl
}

func TestCommitKeepsChanges(t *testing.T) {
	m, tbl := setup(t)
	tx := m.Begin()
	id, err := tx.Insert("Flights", value.NewTuple(200, "Oslo"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(id); err != nil {
		t.Errorf("committed row missing: %v", err)
	}
	st := m.Stats()
	if st.Committed != 1 || st.Aborted != 0 {
		t.Errorf("stats = %d committed, %d aborted", st.Committed, st.Aborted)
	}
}

func TestRollbackUndoesEverything(t *testing.T) {
	m, tbl := setup(t)
	before := tbl.All()
	ids := tbl.LookupEq([]int{0}, value.NewTuple(136))

	tx := m.Begin()
	if _, err := tx.Insert("Flights", value.NewTuple(300, "Lima")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("Flights", ids[0], value.NewTuple(136, "Berlin")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("Flights", ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	after := tbl.All()
	if len(after) != len(before) {
		t.Fatalf("row count: before %d after %d", len(before), len(after))
	}
	for i := range before {
		if !before[i].Equal(after[i]) {
			t.Errorf("row %d: %v != %v", i, before[i], after[i])
		}
	}
	// PK restored.
	if _, _, ok := tbl.LookupPK(value.NewTuple(136)); !ok {
		t.Error("PK entry for 136 lost after rollback")
	}
}

func TestUseAfterFinish(t *testing.T) {
	m, _ := setup(t)
	tx := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double commit: %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Errorf("rollback after commit must be a no-op, got %v", err)
	}
	if _, err := tx.Insert("Flights", value.NewTuple(1, "x")); !errors.Is(err, ErrTxnDone) {
		t.Errorf("insert after commit: %v", err)
	}
}

func TestSharedLocksAllowConcurrentReaders(t *testing.T) {
	m, _ := setup(t)
	m.LockReads = true // exercise the compatibility lock table
	tx1, tx2 := m.Begin(), m.Begin()
	defer tx1.Rollback()
	defer tx2.Rollback()
	if err := tx1.Lock("Flights", Shared); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Lock("Flights", Shared); err != nil {
		t.Fatalf("second reader blocked: %v", err)
	}
}

func TestExclusiveBlocksUntilRelease(t *testing.T) {
	m, _ := setup(t)
	m.LockReads = true // under MVCC shared locks are a no-op; pin the lock table's S/X semantics
	tx1 := m.Begin()
	if err := tx1.Lock("Flights", Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() {
		tx2 := m.Begin()
		defer tx2.Rollback()
		acquired <- tx2.Lock("Flights", Shared)
	}()
	select {
	case <-acquired:
		t.Fatal("reader acquired lock while writer held it")
	case <-time.After(50 * time.Millisecond):
	}
	tx1.Commit()
	if err := <-acquired; err != nil {
		t.Fatalf("reader failed after release: %v", err)
	}
}

func TestLockTimeoutResolvesConflict(t *testing.T) {
	m, _ := setup(t)
	m.LockTimeout = 50 * time.Millisecond
	tx1 := m.Begin()
	defer tx1.Rollback()
	if err := tx1.Lock("Flights", Exclusive); err != nil {
		t.Fatal(err)
	}
	tx2 := m.Begin()
	defer tx2.Rollback()
	if err := tx2.Lock("Flights", Exclusive); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("expected ErrLockTimeout, got %v", err)
	}
	if m.Stats().Timeouts == 0 {
		t.Error("timeout not counted")
	}
}

func TestReentrantAndUpgrade(t *testing.T) {
	m, _ := setup(t)
	m.LockReads = true // exercise the compatibility lock table's upgrade path
	tx := m.Begin()
	defer tx.Rollback()
	if err := tx.Lock("Flights", Shared); err != nil {
		t.Fatal(err)
	}
	if err := tx.Lock("Flights", Shared); err != nil {
		t.Fatal("reentrant shared failed")
	}
	// Sole reader can upgrade.
	if err := tx.Lock("Flights", Exclusive); err != nil {
		t.Fatalf("upgrade failed: %v", err)
	}
	// X subsumes S.
	if err := tx.Lock("Flights", Shared); err != nil {
		t.Fatalf("S under X failed: %v", err)
	}
	if !tx.Holds("Flights", Exclusive) {
		t.Error("Holds(X) false after upgrade")
	}
}

func TestUpgradeBlockedByOtherReader(t *testing.T) {
	m, _ := setup(t)
	m.LockReads = true // exercise the compatibility lock table
	m.LockTimeout = 50 * time.Millisecond
	tx1, tx2 := m.Begin(), m.Begin()
	defer tx1.Rollback()
	defer tx2.Rollback()
	tx1.Lock("Flights", Shared)
	tx2.Lock("Flights", Shared)
	if err := tx1.Lock("Flights", Exclusive); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("upgrade with other reader present: %v", err)
	}
}

func TestLockAllOrderedNoDeadlock(t *testing.T) {
	cat := storage.NewCatalog()
	schema := value.NewSchema(value.Col("x", value.TypeInt))
	for _, n := range []string{"A", "B", "C", "D"} {
		if _, err := cat.Create(n, schema); err != nil {
			t.Fatal(err)
		}
	}
	m := NewManager(cat)
	m.LockTimeout = 2 * time.Second
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine locks the tables in a scrambled declaration
			// order; LockAll must still be deadlock-free.
			names := []string{"D", "B", "A", "C"}
			for i := 0; i < 20; i++ {
				tx := m.Begin()
				if err := tx.LockAll(nil, names); err != nil {
					errs <- err
					tx.Rollback()
					return
				}
				tx.Commit()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("LockAll deadlocked/timed out: %v", err)
	}
}

func TestConcurrentTransfersAtomic(t *testing.T) {
	// Classic isolation test: concurrent movers between two tables keep the
	// total row count invariant.
	cat := storage.NewCatalog()
	schema := value.NewSchema(value.Col("id", value.TypeInt))
	a, _ := cat.Create("A", schema)
	b, _ := cat.Create("B", schema)
	for i := 0; i < 50; i++ {
		a.Insert(value.NewTuple(i))
	}
	m := NewManager(cat)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				err := m.RunAtomic(func(tx *Txn) error {
					if err := tx.LockAll(nil, []string{"A", "B"}); err != nil {
						return err
					}
					// Move first row of A to B if any.
					var id storage.RowID
					var row value.Tuple
					found := false
					if err := tx.Scan("A", func(r storage.RowID, tup value.Tuple) bool {
						id, row, found = r, tup, true
						return false
					}); err != nil {
						return err
					}
					if !found {
						return nil
					}
					if err := tx.Delete("A", id); err != nil {
						return err
					}
					_, err := tx.Insert("B", row)
					return err
				})
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
				// Count both tables under ONE transaction snapshot: a commit
				// landing between two independent Latest() reads could
				// legitimately straddle them, but a single snapshot must
				// always observe the invariant.
				total := 0
				add := func(storage.RowID, value.Tuple) bool { total++; return true }
				rtx := m.Begin()
				rtx.Scan("A", add) //nolint:errcheck
				rtx.Scan("B", add) //nolint:errcheck
				rtx.Rollback()
				if total != 50 {
					t.Errorf("invariant broken: total = %d", total)
					return
				}
			}
		}()
	}
	wg.Wait()
	if a.Len()+b.Len() != 50 {
		t.Errorf("final total = %d", a.Len()+b.Len())
	}
	if a.Len() != 0 {
		t.Errorf("A should be drained (240 moves > 50 rows), has %d", a.Len())
	}
}

func TestRunAtomicRollsBackOnError(t *testing.T) {
	m, tbl := setup(t)
	wantErr := errors.New("boom")
	err := m.RunAtomic(func(tx *Txn) error {
		if _, err := tx.Insert("Flights", value.NewTuple(900, "X")); err != nil {
			return err
		}
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if len(tbl.LookupEq([]int{0}, value.NewTuple(900))) != 0 {
		t.Error("insert survived rollback")
	}
}

func TestRunAtomicRollsBackOnPanic(t *testing.T) {
	m, tbl := setup(t)
	func() {
		defer func() { recover() }()
		m.RunAtomic(func(tx *Txn) error {
			tx.Insert("Flights", value.NewTuple(901, "X"))
			panic("boom")
		})
	}()
	if len(tbl.LookupEq([]int{0}, value.NewTuple(901))) != 0 {
		t.Error("insert survived panic rollback")
	}
}

func TestRunAtomicRetriesTimeouts(t *testing.T) {
	m, _ := setup(t)
	m.LockTimeout = 30 * time.Millisecond
	tx := m.Begin()
	if err := tx.Lock("Flights", Exclusive); err != nil {
		t.Fatal(err)
	}
	// Release the blocker after one timeout period so a retry succeeds.
	go func() {
		time.Sleep(45 * time.Millisecond)
		tx.Commit()
	}()
	err := m.RunAtomic(func(tx2 *Txn) error {
		return tx2.Lock("Flights", Exclusive)
	})
	if err != nil {
		t.Fatalf("RunAtomic did not recover via retry: %v", err)
	}
}

func TestScanGetUnderTxn(t *testing.T) {
	m, _ := setup(t)
	tx := m.Begin()
	defer tx.Rollback()
	n := 0
	if err := tx.Scan("Flights", func(storage.RowID, value.Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("scanned %d rows", n)
	}
	if _, err := tx.Get("NoSuch", 1); err == nil {
		t.Error("Get on missing table succeeded")
	}
}

func TestManyTablesStress(t *testing.T) {
	cat := storage.NewCatalog()
	schema := value.NewSchema(value.Col("x", value.TypeInt))
	const nt = 10
	for i := 0; i < nt; i++ {
		cat.Create(fmt.Sprintf("T%d", i), schema)
	}
	m := NewManager(cat)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ti := (g + i) % nt
				tj := (g + i + 3) % nt
				err := m.RunAtomic(func(tx *Txn) error {
					if err := tx.LockAll(nil, []string{fmt.Sprintf("T%d", ti), fmt.Sprintf("T%d", tj)}); err != nil {
						return err
					}
					_, err := tx.Insert(fmt.Sprintf("T%d", ti), value.NewTuple(i))
					return err
				})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for i := 0; i < nt; i++ {
		tbl, _ := cat.Get(fmt.Sprintf("T%d", i))
		total += tbl.Len()
	}
	if total != 8*25 {
		t.Errorf("total rows = %d, want 200", total)
	}
}
