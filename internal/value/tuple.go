package value

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Tuple is an ordered list of values — one row of a relation.
type Tuple []Value

// NewTuple builds a tuple from Go values, converting the common native types.
// It panics on unsupported kinds; it is intended for literals in tests,
// examples and seed data.
func NewTuple(vals ...any) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			t[i] = Null
		case int:
			t[i] = NewInt(int64(x))
		case int64:
			t[i] = NewInt(x)
		case float64:
			t[i] = NewFloat(x)
		case string:
			t[i] = NewString(x)
		case bool:
			t[i] = NewBool(x)
		case Value:
			t[i] = x
		default:
			panic(fmt.Sprintf("value: NewTuple: unsupported %T", v))
		}
	}
	return t
}

// Equal reports positionwise Identical equality (NULL equals NULL, so tuples
// are usable as set members).
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Identical(o[i]) {
			return false
		}
	}
	return true
}

// Hash returns a hash consistent with Equal.
func (t Tuple) Hash() uint64 {
	h := fnv.New64a()
	for _, v := range t {
		writeUint64(h, v.Hash())
	}
	return h.Sum64()
}

// Key renders a canonical string key consistent with Equal; useful for maps.
func (t Tuple) Key() string {
	var b [64]byte
	return string(t.AppendKey(b[:0]))
}

// AppendKey appends the canonical key bytes of the tuple to b and returns
// the extended slice. Probing a map with string(t.AppendKey(scratch)) does
// not allocate (the compiler elides the conversion for map access), which is
// what the coordination hot path — candidate-index probes, installed-answer
// lookups, grounding dedup — relies on.
func (t Tuple) AppendKey(b []byte) []byte {
	for i, v := range t {
		if i > 0 {
			b = append(b, '|')
		}
		b = v.AppendKey(b)
	}
	return b
}

// Clone returns a copy of the tuple. Values are immutable, so a shallow copy
// of the slice suffices.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Project returns the tuple restricted to the given column offsets.
func (t Tuple) Project(cols []int) Tuple {
	p := make(Tuple, len(cols))
	for i, c := range cols {
		p[i] = t[c]
	}
	return p
}

// Column describes one attribute of a relation schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from alternating name/type pairs is awkward;
// instead it takes explicit columns.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Col is shorthand for constructing a Column.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Columns) }

// Ordinal returns the offset of the named column (case-insensitive), or -1.
func (s *Schema) Ordinal(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Validate checks that a tuple conforms to the schema, coercing numeric
// values into declared column types. It returns the (possibly coerced) tuple.
func (s *Schema) Validate(t Tuple) (Tuple, error) {
	if len(t) != len(s.Columns) {
		return nil, fmt.Errorf("arity mismatch: got %d values, schema has %d columns", len(t), len(s.Columns))
	}
	out := t
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		if v.Type() != s.Columns[i].Type {
			cv, err := v.Coerce(s.Columns[i].Type)
			if err != nil {
				return nil, fmt.Errorf("column %s: %w", s.Columns[i].Name, err)
			}
			if &out[0] == &t[0] {
				out = t.Clone()
			}
			out[i] = cv
		}
	}
	return out, nil
}

// String renders the schema as (name TYPE, ...).
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
