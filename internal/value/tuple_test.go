package value

import (
	"testing"
	"testing/quick"
)

func TestNewTuple(t *testing.T) {
	tup := NewTuple("Kramer", 122, 2.5, true, nil, NewString("x"))
	want := Tuple{NewString("Kramer"), NewInt(122), NewFloat(2.5), NewBool(true), Null, NewString("x")}
	if !tup.Equal(want) {
		t.Errorf("NewTuple = %v, want %v", tup, want)
	}
}

func TestNewTuplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unsupported type")
		}
	}()
	NewTuple(struct{}{})
}

func TestTupleEqualHashKey(t *testing.T) {
	a := NewTuple("Jerry", 122)
	b := NewTuple("Jerry", 122)
	c := NewTuple("Jerry", 123)
	if !a.Equal(b) || a.Equal(c) {
		t.Error("tuple equality")
	}
	if a.Hash() != b.Hash() {
		t.Error("equal tuples must hash equal")
	}
	if a.Key() != b.Key() || a.Key() == c.Key() {
		t.Error("Key must be consistent with Equal")
	}
	if a.Equal(NewTuple("Jerry")) {
		t.Error("different arities are not equal")
	}
}

func TestTupleKeyTypeDisambiguation(t *testing.T) {
	// 1, '1' and TRUE must all have distinct keys.
	keys := map[string]bool{}
	for _, tup := range []Tuple{NewTuple(1), NewTuple("1"), NewTuple(true)} {
		keys[tup.Key()] = true
	}
	if len(keys) != 3 {
		t.Errorf("expected 3 distinct keys, got %d", len(keys))
	}
}

func TestTupleCloneProject(t *testing.T) {
	a := NewTuple("Jerry", 122, "Paris")
	c := a.Clone()
	c[0] = NewString("Kramer")
	if a[0].Str() != "Jerry" {
		t.Error("Clone must not alias")
	}
	p := a.Project([]int{2, 0})
	if !p.Equal(NewTuple("Paris", "Jerry")) {
		t.Errorf("Project = %v", p)
	}
}

func TestTupleString(t *testing.T) {
	if got := NewTuple("Kramer", 122).String(); got != "('Kramer', 122)" {
		t.Errorf("String() = %q", got)
	}
}

func TestTupleEqualNullReflexive(t *testing.T) {
	a := NewTuple(nil, 1)
	b := NewTuple(nil, 1)
	if !a.Equal(b) {
		t.Error("tuples containing NULL must be Equal when identical (set semantics)")
	}
}

func TestTupleHashEqualProperty(t *testing.T) {
	f := func(x, y int64, s string) bool {
		a := NewTuple(x, s, y)
		b := NewTuple(x, s, y)
		return a.Equal(b) && a.Hash() == b.Hash() && a.Key() == b.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemaOrdinalValidate(t *testing.T) {
	s := NewSchema(Col("fno", TypeInt), Col("dest", TypeString))
	if s.Arity() != 2 {
		t.Error("arity")
	}
	if s.Ordinal("FNO") != 0 || s.Ordinal("dest") != 1 || s.Ordinal("nope") != -1 {
		t.Error("ordinal lookup (case-insensitive)")
	}
	if _, err := s.Validate(NewTuple(122, "Paris")); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if _, err := s.Validate(NewTuple(122)); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := s.Validate(NewTuple("x", "Paris")); err == nil {
		t.Error("type mismatch accepted")
	}
	// Coercion: float 122.0 into INT column.
	got, err := s.Validate(NewTuple(122.0, "Paris"))
	if err != nil {
		t.Fatalf("coercible tuple rejected: %v", err)
	}
	if got[0].Type() != TypeInt {
		t.Errorf("expected coerced INT, got %v", got[0].Type())
	}
	// NULL passes through any column.
	if _, err := s.Validate(NewTuple(nil, nil)); err != nil {
		t.Errorf("NULLs rejected: %v", err)
	}
}

func TestSchemaValidateDoesNotMutateInput(t *testing.T) {
	s := NewSchema(Col("x", TypeInt))
	in := NewTuple(5.0)
	if _, err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if in[0].Type() != TypeFloat {
		t.Error("Validate mutated its input tuple")
	}
}

func TestSchemaString(t *testing.T) {
	s := NewSchema(Col("fno", TypeInt), Col("dest", TypeString))
	if got := s.String(); got != "(fno INT, dest STRING)" {
		t.Errorf("String() = %q", got)
	}
}
