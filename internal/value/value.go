// Package value defines the typed value, tuple and schema layer shared by
// every component of the Youtopia reproduction: the storage engine, the SQL
// execution engine, the entangled-query compiler and the coordination
// component all exchange data as value.Tuple.
//
// The type system is deliberately small — integers, floats, strings, booleans
// and NULL — matching what the paper's travel schema (Figure 1a) needs while
// keeping comparison and hashing semantics unambiguous.
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Type enumerates the value types supported by the engine.
type Type uint8

// Supported types. TypeNull is the type of the NULL literal before it is
// coerced into a column's declared type.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeString
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "STRING"
	case TypeBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType converts a SQL type name to a Type. It accepts the common
// aliases used in CREATE TABLE statements.
func ParseType(name string) (Type, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return TypeInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return TypeFloat, nil
	case "STRING", "TEXT", "VARCHAR", "CHAR":
		return TypeString, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	default:
		return TypeNull, fmt.Errorf("unknown type %q", name)
	}
}

// Value is a single typed datum. The zero Value is NULL.
//
// Value is a small immutable struct passed by value everywhere; it never
// aliases mutable state, so tuples can be shared freely across goroutines
// once published.
type Value struct {
	typ Type
	i   int64   // TypeInt and TypeBool (0/1)
	f   float64 // TypeFloat
	s   string  // TypeString
}

// Null is the NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{typ: TypeInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{typ: TypeFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{typ: TypeString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{typ: TypeBool, i: i}
}

// Type reports the value's type.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.typ == TypeNull }

// Int returns the integer payload. It panics if the value is not an INT.
func (v Value) Int() int64 {
	if v.typ != TypeInt {
		panic(fmt.Sprintf("value: Int() on %s", v.typ))
	}
	return v.i
}

// Float returns the float payload, coercing INT to FLOAT. It panics on other
// types.
func (v Value) Float() float64 {
	switch v.typ {
	case TypeFloat:
		return v.f
	case TypeInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("value: Float() on %s", v.typ))
	}
}

// Str returns the string payload. It panics if the value is not a STRING.
func (v Value) Str() string {
	if v.typ != TypeString {
		panic(fmt.Sprintf("value: Str() on %s", v.typ))
	}
	return v.s
}

// Bool returns the boolean payload. It panics if the value is not a BOOL.
func (v Value) Bool() bool {
	if v.typ != TypeBool {
		panic(fmt.Sprintf("value: Bool() on %s", v.typ))
	}
	return v.i != 0
}

// String renders the value in SQL literal syntax.
func (v Value) String() string {
	switch v.typ {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case TypeBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// AppendKey appends a canonical, injective key encoding of the value to b:
// a type tag, then the payload — strings are length-prefixed so payload
// bytes can never be confused with tuple separators. The encoding is
// consistent with Identical for values of the same type; it deliberately
// avoids fmt and SQL quoting so hot-path key construction writes straight
// into a caller-owned (usually stack) buffer.
func (v Value) AppendKey(b []byte) []byte {
	b = append(b, '0'+byte(v.typ), ':')
	switch v.typ {
	case TypeInt, TypeBool:
		b = strconv.AppendInt(b, v.i, 10)
	case TypeFloat:
		b = strconv.AppendFloat(b, v.f, 'g', -1, 64)
	case TypeString:
		b = strconv.AppendInt(b, int64(len(v.s)), 10)
		b = append(b, ':')
		b = append(b, v.s...)
	}
	return b
}

// numeric reports whether the value is INT or FLOAT.
func (v Value) numeric() bool { return v.typ == TypeInt || v.typ == TypeFloat }

// Equal reports SQL equality with NULL never equal to anything (including
// NULL). INT and FLOAT compare numerically across types.
func (v Value) Equal(o Value) bool {
	if v.typ == TypeNull || o.typ == TypeNull {
		return false
	}
	if v.numeric() && o.numeric() {
		if v.typ == TypeInt && o.typ == TypeInt {
			return v.i == o.i
		}
		return v.Float() == o.Float()
	}
	if v.typ != o.typ {
		return false
	}
	switch v.typ {
	case TypeString:
		return v.s == o.s
	case TypeBool:
		return v.i == o.i
	default:
		return false
	}
}

// Identical reports structural identity: NULL is identical to NULL, and no
// numeric cross-type coercion happens. This is the equality used by hash
// indexes and by the unifier, where NULL-vs-NULL must be reflexive.
func (v Value) Identical(o Value) bool {
	if v.typ != o.typ {
		// Allow INT/FLOAT identity only when numerically exact, so that an
		// index keyed by 2.0 finds the literal 2.
		if v.numeric() && o.numeric() {
			return v.Float() == o.Float()
		}
		return false
	}
	switch v.typ {
	case TypeNull:
		return true
	case TypeInt, TypeBool:
		return v.i == o.i
	case TypeFloat:
		return v.f == o.f
	case TypeString:
		return v.s == o.s
	default:
		return false
	}
}

// Compare orders two values: -1, 0 or +1. NULL sorts before everything.
// Values of incomparable types order by type tag (stable but arbitrary),
// which is sufficient for deterministic iteration.
func (v Value) Compare(o Value) int {
	if v.typ == TypeNull || o.typ == TypeNull {
		switch {
		case v.typ == o.typ:
			return 0
		case v.typ == TypeNull:
			return -1
		default:
			return 1
		}
	}
	if v.numeric() && o.numeric() {
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.typ != o.typ {
		if v.typ < o.typ {
			return -1
		}
		return 1
	}
	switch v.typ {
	case TypeString:
		return strings.Compare(v.s, o.s)
	case TypeBool:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Hash returns a 64-bit hash consistent with Identical: identical values hash
// equal, and numerically-equal INT/FLOAT values hash equal.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	switch v.typ {
	case TypeNull:
		h.Write([]byte{0})
	case TypeInt:
		writeUint64(h, uint64(v.i))
		// INT hashes like the equal FLOAT so cross-type lookups work.
	case TypeFloat:
		if f := v.f; f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			writeUint64(h, uint64(int64(f)))
		} else {
			writeUint64(h, math.Float64bits(f))
		}
	case TypeString:
		h.Write([]byte{2})
		h.Write([]byte(v.s))
	case TypeBool:
		h.Write([]byte{3, byte(v.i)})
	}
	return h.Sum64()
}

func writeUint64(h interface{ Write([]byte) (int, error) }, u uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	h.Write(b[:])
}

// Coerce converts v to type t when a lossless conversion exists (INT→FLOAT,
// exact FLOAT→INT, NULL→anything). It returns an error otherwise.
func (v Value) Coerce(t Type) (Value, error) {
	if v.typ == t || v.typ == TypeNull {
		return v, nil
	}
	switch {
	case v.typ == TypeInt && t == TypeFloat:
		return NewFloat(float64(v.i)), nil
	case v.typ == TypeFloat && t == TypeInt:
		if v.f == math.Trunc(v.f) {
			return NewInt(int64(v.f)), nil
		}
	}
	return Null, fmt.Errorf("cannot coerce %s %s to %s", v.typ, v, t)
}
