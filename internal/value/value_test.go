package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeNull: "NULL", TypeInt: "INT", TypeFloat: "FLOAT",
		TypeString: "STRING", TypeBool: "BOOL",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	good := map[string]Type{
		"int": TypeInt, "INTEGER": TypeInt, "BigInt": TypeInt,
		"float": TypeFloat, "DOUBLE": TypeFloat, "real": TypeFloat,
		"string": TypeString, "TEXT": TypeString, "varchar": TypeString,
		"bool": TypeBool, "BOOLEAN": TypeBool,
	}
	for name, want := range good {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestAccessors(t *testing.T) {
	if NewInt(7).Int() != 7 {
		t.Error("Int accessor")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float accessor")
	}
	if NewInt(3).Float() != 3.0 {
		t.Error("Int→Float coercion in accessor")
	}
	if NewString("x").Str() != "x" {
		t.Error("Str accessor")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool accessor")
	}
	if !Null.IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { NewString("x").Int() },
		func() { NewString("x").Float() },
		func() { NewInt(1).Str() },
		func() { NewInt(1).Bool() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEqualSQLSemantics(t *testing.T) {
	// NULL is never Equal, even to NULL.
	if Null.Equal(Null) {
		t.Error("NULL = NULL must be false under Equal")
	}
	if Null.Equal(NewInt(1)) || NewInt(1).Equal(Null) {
		t.Error("NULL = x must be false")
	}
	if !NewInt(2).Equal(NewFloat(2.0)) {
		t.Error("2 = 2.0 should hold")
	}
	if NewInt(2).Equal(NewString("2")) {
		t.Error("2 = '2' must not hold")
	}
	if !NewString("a").Equal(NewString("a")) || NewString("a").Equal(NewString("b")) {
		t.Error("string equality")
	}
	if !NewBool(true).Equal(NewBool(true)) || NewBool(true).Equal(NewBool(false)) {
		t.Error("bool equality")
	}
}

func TestIdentical(t *testing.T) {
	if !Null.Identical(Null) {
		t.Error("NULL identical NULL must hold")
	}
	if !NewInt(2).Identical(NewFloat(2.0)) {
		t.Error("2 identical 2.0 should hold (exact numeric)")
	}
	if NewInt(2).Identical(NewFloat(2.5)) {
		t.Error("2 identical 2.5 must not hold")
	}
	if NewBool(true).Identical(NewInt(1)) {
		t.Error("TRUE identical 1 must not hold")
	}
}

func TestCompare(t *testing.T) {
	ordered := []Value{Null, NewInt(-3), NewFloat(-2.5), NewInt(0), NewFloat(1.5), NewInt(2)}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			var want int
			switch {
			case i < j:
				want = -1
			case i > j:
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
	if NewString("a").Compare(NewString("b")) != -1 {
		t.Error("string compare")
	}
	if NewBool(false).Compare(NewBool(true)) != -1 {
		t.Error("bool compare")
	}
}

func TestHashConsistentWithIdentical(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(42), NewFloat(42.0)},
		{Null, Null},
		{NewString("paris"), NewString("paris")},
		{NewBool(true), NewBool(true)},
	}
	for _, p := range pairs {
		if !p[0].Identical(p[1]) {
			t.Fatalf("%v not identical %v", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("identical values hash differently: %v vs %v", p[0], p[1])
		}
	}
}

func TestHashIdenticalProperty(t *testing.T) {
	// Property: for random int64 i, hash(int i) == hash(float i) when exact.
	f := func(i int32) bool {
		a, b := NewInt(int64(i)), NewFloat(float64(i))
		return a.Identical(b) && a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareProperties(t *testing.T) {
	// Antisymmetry and reflexivity over random ints and strings.
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return va.Compare(vb) == -vb.Compare(va) && va.Compare(va) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		va, vb := NewString(a), NewString(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":      Null,
		"42":        NewInt(42),
		"2.5":       NewFloat(2.5),
		"'O''Hare'": NewString("O'Hare"),
		"TRUE":      NewBool(true),
		"FALSE":     NewBool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestCoerce(t *testing.T) {
	if v, err := NewInt(3).Coerce(TypeFloat); err != nil || v.Float() != 3.0 {
		t.Errorf("int→float: %v, %v", v, err)
	}
	if v, err := NewFloat(4.0).Coerce(TypeInt); err != nil || v.Int() != 4 {
		t.Errorf("exact float→int: %v, %v", v, err)
	}
	if _, err := NewFloat(4.5).Coerce(TypeInt); err == nil {
		t.Error("inexact float→int must fail")
	}
	if _, err := NewString("x").Coerce(TypeInt); err == nil {
		t.Error("string→int must fail")
	}
	if v, err := Null.Coerce(TypeInt); err != nil || !v.IsNull() {
		t.Error("NULL coerces to anything")
	}
}

func TestCoerceNaN(t *testing.T) {
	if _, err := NewFloat(math.NaN()).Coerce(TypeInt); err == nil {
		t.Error("NaN→int must fail")
	}
}
