package wal

import (
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// Applier replays a log-record stream into a catalog that is concurrently
// serving snapshot reads — the replication follower's apply path.
//
// Plain recovery (applyRecord) makes every record visible the moment it is
// applied, which is correct when nobody is reading yet but would let a live
// reader observe half of a transaction whose records it is between. The
// Applier instead demultiplexes records by their LogRecord.Txn tag into
// per-transaction MVCC writers: a tagged row op lands in its transaction's
// writer (invisible to every snapshot), and the transaction's OpCommit
// publishes the writer — one atomic timestamp store, exactly as the original
// commit did on the primary. Untagged records (auto-commit mutations, DDL)
// apply directly, each being its own atomic unit.
//
// A snapshot segment is the one untagged sequence that is NOT record-atomic:
// its rows rebuild the whole database and must appear all at once. The
// follower brackets it with BeginSnapshot, which routes untagged row ops
// through a single batch writer committed by the segment's trailing
// OpCommit.
type Applier struct {
	cat *storage.Catalog

	mu    sync.Mutex
	open  map[uint64]*storage.Writer // in-flight transactions by Txn tag
	batch *storage.Writer            // snapshot-segment batch, nil outside one

	applied atomic.Uint64 // records applied
	commits atomic.Uint64 // commit records applied
	lastTS  atomic.Uint64 // timestamp of the newest applied commit
}

// NewApplier returns an applier replaying into cat.
func NewApplier(cat *storage.Catalog) *Applier {
	return &Applier{cat: cat, open: make(map[uint64]*storage.Writer)}
}

func isDDL(op storage.LogOp) bool {
	switch op {
	case storage.OpCreateTable, storage.OpDropTable, storage.OpCreateIndex, storage.OpCreateOrderedIndex:
		return true
	}
	return false
}

// writer returns (creating on first use) the MVCC writer for transaction id.
// The snapshot is pinned at infinity so first-committer-wins never fires:
// the primary already resolved every conflict; the follower replays winners.
func (a *Applier) writer(id uint64) *storage.Writer {
	w := a.open[id]
	if w == nil {
		w = a.cat.NewTaggedWriter(id)
		w.SetSnapshot(^uint64(0))
		a.open[id] = w
	}
	return w
}

// Apply replays one record. Safe to call from the single replay goroutine
// while any number of snapshot readers run against the catalog.
func (a *Applier) Apply(r storage.LogRecord) error {
	a.mu.Lock()
	defer a.mu.Unlock()

	if r.Op == storage.OpCommit {
		if r.Txn != 0 {
			if w := a.open[r.Txn]; w != nil {
				w.Commit()
				delete(a.open, r.Txn)
			}
		} else if a.batch != nil {
			a.batch.Commit()
			a.batch = nil
		}
		// The follower's own commits drew local timestamps; dragging the
		// clock to the primary's keeps follower snapshots ordered after
		// everything the primary had committed by this point.
		a.cat.AdvanceClock(r.TS)
		a.lastTS.Store(r.TS)
		a.commits.Add(1)
		a.applied.Add(1)
		return nil
	}

	if isDDL(r.Op) {
		// DDL is not versioned; it applies directly even inside a snapshot
		// batch (a created-but-still-empty table is benign). The DDL version
		// bump invalidates any plan the follower cached against the old
		// schema — replicated DDL skips the engine layer that normally bumps.
		if err := applyRecord(a.cat, r); err != nil {
			return err
		}
		a.cat.BumpDDL()
		a.applied.Add(1)
		return nil
	}

	var w *storage.Writer
	switch {
	case r.Txn != 0:
		w = a.writer(r.Txn)
	case a.batch != nil:
		w = a.batch
	default:
		// Untagged auto-commit mutation: its own atomic unit.
		if err := applyRecord(a.cat, r); err != nil {
			return err
		}
		a.applied.Add(1)
		return nil
	}

	tbl, err := a.cat.Get(r.Table)
	if err != nil {
		return err
	}
	switch r.Op {
	case storage.OpInsert, storage.OpRestore:
		err = tbl.RestoreAtW(w, r.RowID, r.Row)
	case storage.OpDelete:
		_, err = tbl.DeleteW(w, r.RowID)
	case storage.OpUpdate:
		_, err = tbl.UpdateW(w, r.RowID, r.Row)
	default:
		err = applyRecord(a.cat, r)
	}
	if err != nil {
		return err
	}
	a.applied.Add(1)
	return nil
}

// BeginSnapshot starts snapshot-batch mode: until the next untagged
// OpCommit, untagged row ops accumulate in one writer so the rebuilt state
// becomes visible atomically.
func (a *Applier) BeginSnapshot() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.batch == nil {
		a.batch = a.cat.NewTaggedWriter(0) // untagged: a snapshot commit is not a transaction
		a.batch.SetSnapshot(^uint64(0))
	}
}

// CommitAll publishes every in-flight transaction and returns how many were
// open. Promotion calls it: a transaction whose commit record the old
// primary never shipped is in exactly the state the primary's own crash
// recovery would leave it — its logged effects applied — so publishing
// matches the recovery semantics the log has always had.
func (a *Applier) CommitAll() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for id, w := range a.open {
		w.Commit()
		delete(a.open, id)
		n++
	}
	if a.batch != nil {
		a.batch.Commit()
		a.batch = nil
		n++
	}
	return n
}

// Reset discards in-flight transactions and drops every table, preparing the
// catalog to receive a full snapshot re-ship. The catalog must have no log
// hook installed (followers never do), or the drops would re-log themselves.
func (a *Applier) Reset() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.open = make(map[uint64]*storage.Writer)
	a.batch = nil
	for _, name := range a.cat.Names() {
		if err := a.cat.Drop(name); err != nil {
			return err
		}
	}
	a.cat.BumpDDL()
	return nil
}

// Applied returns the number of records applied.
func (a *Applier) Applied() uint64 { return a.applied.Load() }

// Commits returns the number of commit records applied.
func (a *Applier) Commits() uint64 { return a.commits.Load() }

// LastTS returns the commit timestamp of the newest applied commit record —
// the follower's replayed watermark.
func (a *Applier) LastTS() uint64 { return a.lastTS.Load() }

// OpenTxns returns the number of transactions with records applied but no
// commit record yet.
func (a *Applier) OpenTxns() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.open)
	if a.batch != nil {
		n++
	}
	return n
}
