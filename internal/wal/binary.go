package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/storage"
	"repro/internal/value"
)

// Binary record format (log format v2).
//
// A segment file is an 8-byte header followed by framed records:
//
//	header:  "YWAL" | version (1 byte) | flags (1 byte) | 2 reserved bytes
//	record:  payload length (uint32 LE) | CRC32-C of payload (uint32 LE) | payload
//
// The payload is a compact self-describing encoding of one storage.LogRecord:
// an op byte, the table name, then op-specific fields (schema columns, index
// columns, row id, row values). Integers are varints, floats are 8 raw bytes,
// strings are length-prefixed. The CRC covers the payload only; the length
// field is validated against the bytes remaining in the segment, so a torn
// write at any byte boundary is detected either by an impossible length or a
// checksum mismatch — never by a misdecode.

const (
	segHeaderLen = 8
	segVersion   = 2

	// flagSnapshot marks a segment written by compaction: it is a complete
	// snapshot of the database state, so recovery starts at the newest
	// snapshot segment and ignores anything older.
	flagSnapshot = 1

	// maxRecordLen bounds a single record so a corrupt length field cannot
	// drive a huge allocation.
	maxRecordLen = 64 << 20
)

var segMagic = [4]byte{'Y', 'W', 'A', 'L'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// opCode maps storage.LogOp to its wire byte (and back via opFromCode).
func opCode(op storage.LogOp) (byte, bool) {
	switch op {
	case storage.OpCreateTable:
		return 1, true
	case storage.OpDropTable:
		return 2, true
	case storage.OpCreateIndex:
		return 3, true
	case storage.OpCreateOrderedIndex:
		return 4, true
	case storage.OpInsert:
		return 5, true
	case storage.OpDelete:
		return 6, true
	case storage.OpUpdate:
		return 7, true
	case storage.OpRestore:
		return 8, true
	case storage.OpCommit:
		return 9, true
	default:
		return 0, false
	}
}

func opFromCode(c byte) (storage.LogOp, bool) {
	switch c {
	case 1:
		return storage.OpCreateTable, true
	case 2:
		return storage.OpDropTable, true
	case 3:
		return storage.OpCreateIndex, true
	case 4:
		return storage.OpCreateOrderedIndex, true
	case 5:
		return storage.OpInsert, true
	case 6:
		return storage.OpDelete, true
	case 7:
		return storage.OpUpdate, true
	case 8:
		return storage.OpRestore, true
	case 9:
		return storage.OpCommit, true
	default:
		return "", false
	}
}

// The final two header bytes checksum the first six, so a bit flip in the
// flags byte cannot silently turn an ordinary segment into a "snapshot"
// (which would make recovery discard everything older than it).
func segHeader(flags byte) []byte {
	h := make([]byte, segHeaderLen)
	copy(h, segMagic[:])
	h[4] = segVersion
	h[5] = flags
	sum := crc32.Checksum(h[:6], crcTable)
	binary.LittleEndian.PutUint16(h[6:], uint16(sum))
	return h
}

// parseSegHeader validates an on-disk header, returning its flags.
func parseSegHeader(b []byte) (flags byte, err error) {
	if len(b) < segHeaderLen {
		return 0, fmt.Errorf("wal: segment header truncated (%d bytes)", len(b))
	}
	if [4]byte(b[:4]) != segMagic {
		return 0, fmt.Errorf("wal: bad segment magic %q", b[:4])
	}
	if b[4] != segVersion {
		return 0, fmt.Errorf("wal: unsupported segment version %d", b[4])
	}
	sum := crc32.Checksum(b[:6], crcTable)
	if binary.LittleEndian.Uint16(b[6:]) != uint16(sum) {
		return 0, fmt.Errorf("wal: segment header checksum mismatch")
	}
	return b[5], nil
}

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendString(dst []byte, s string) []byte { return storage.AppendString(dst, s) }

// appendValue delegates to the storage codec (storage/codec.go), the single
// implementation shared with the buffer pool's heap pages — a tuple's WAL
// bytes and its on-page bytes are the same encoding.
func appendValue(dst []byte, v value.Value) []byte { return storage.AppendValue(dst, v) }

// appendRecordPayload encodes r (without framing) onto dst.
func appendRecordPayload(dst []byte, r storage.LogRecord) ([]byte, error) {
	code, ok := opCode(r.Op)
	if !ok {
		return dst, fmt.Errorf("wal: cannot encode op %q", r.Op)
	}
	dst = append(dst, code)
	dst = appendString(dst, r.Table)
	switch r.Op {
	case storage.OpCreateTable:
		if r.Schema == nil {
			return dst, fmt.Errorf("wal: create record for %q has no schema", r.Table)
		}
		dst = appendUvarint(dst, uint64(len(r.Schema.Columns)))
		for _, c := range r.Schema.Columns {
			dst = appendString(dst, c.Name)
			dst = append(dst, byte(c.Type))
		}
		dst = appendUvarint(dst, uint64(len(r.PK)))
		for _, p := range r.PK {
			dst = appendString(dst, p)
		}
	case storage.OpDropTable:
		// Table name only.
	case storage.OpCreateIndex, storage.OpCreateOrderedIndex:
		dst = appendUvarint(dst, uint64(len(r.Cols)))
		for _, c := range r.Cols {
			dst = appendString(dst, c)
		}
		// The index name was added after format v2 shipped; it is appended
		// only when set, and the decoder treats it as optional-trailing (the
		// same evolution scheme as the transaction tag below), so old and new
		// records interoperate both ways.
		if r.Index != "" {
			dst = appendString(dst, r.Index)
		}
	case storage.OpCommit:
		dst = appendUvarint(dst, r.TS)
		dst = appendUvarint(dst, r.Txn)
	default: // row ops
		dst = appendUvarint(dst, uint64(r.RowID))
		dst = appendUvarint(dst, uint64(len(r.Row)))
		for _, v := range r.Row {
			dst = appendValue(dst, v)
		}
		dst = appendUvarint(dst, r.Txn)
	}
	return dst, nil
}

// appendFramedRecord encodes r with its length+CRC frame onto dst.
func appendFramedRecord(dst []byte, r storage.LogRecord) ([]byte, error) {
	// Reserve the frame, encode, then back-patch length and CRC.
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst, err := appendRecordPayload(dst, r)
	if err != nil {
		return dst[:start], err
	}
	payload := dst[start+8:]
	if len(payload) > maxRecordLen {
		// Refuse at write time: an oversized record would be acknowledged
		// as durable yet rejected by the decoder's length guard on replay.
		return dst[:start], fmt.Errorf("wal: record payload %d bytes exceeds the %d-byte limit", len(payload), maxRecordLen)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, crcTable))
	return dst, nil
}

// byteReader is a bounds-checked cursor over a record payload. Every read
// reports an error instead of panicking, so arbitrarily corrupt (but
// CRC-colliding) input degrades to a decode error.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) remaining() int { return len(r.b) - r.off }

func (r *byteReader) u8() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("wal: record payload truncated")
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: bad uvarint in record payload")
	}
	r.off += n
	return v, nil
}

func (r *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("wal: record payload truncated (want %d bytes, have %d)", n, r.remaining())
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", fmt.Errorf("wal: string length %d exceeds payload", n)
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// count reads an element count and sanity-checks it against the bytes left
// (each element needs at least one byte), bounding allocations on corrupt
// input.
func (r *byteReader) count() (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.remaining()) {
		return 0, fmt.Errorf("wal: element count %d exceeds payload", n)
	}
	return int(n), nil
}

// value decodes one typed value via the shared storage codec, advancing the
// cursor. Errors are wrapped with the WAL's corruption framing so the
// decoder's never-panic contract and messages stay recognizable.
func (r *byteReader) value() (value.Value, error) {
	v, n, err := storage.DecodeValue(r.b[r.off:])
	if err != nil {
		return value.Null, fmt.Errorf("wal: %w", err)
	}
	r.off += n
	return v, nil
}

// decodeRecordPayload decodes one framed payload back into a LogRecord. The
// whole payload must be consumed: trailing bytes mean corruption (or a newer
// writer), not padding.
func decodeRecordPayload(b []byte) (storage.LogRecord, error) {
	r := byteReader{b: b}
	var rec storage.LogRecord
	code, err := r.u8()
	if err != nil {
		return rec, err
	}
	op, ok := opFromCode(code)
	if !ok {
		return rec, fmt.Errorf("wal: unknown op code %d", code)
	}
	rec.Op = op
	if rec.Table, err = r.str(); err != nil {
		return rec, err
	}
	switch op {
	case storage.OpCreateTable:
		ncols, err := r.count()
		if err != nil {
			return rec, err
		}
		schema := value.NewSchema()
		for i := 0; i < ncols; i++ {
			name, err := r.str()
			if err != nil {
				return rec, err
			}
			t, err := r.u8()
			if err != nil {
				return rec, err
			}
			if value.Type(t) > value.TypeBool {
				return rec, fmt.Errorf("wal: unknown column type %d", t)
			}
			schema.Columns = append(schema.Columns, value.Col(name, value.Type(t)))
		}
		rec.Schema = schema
		npk, err := r.count()
		if err != nil {
			return rec, err
		}
		for i := 0; i < npk; i++ {
			p, err := r.str()
			if err != nil {
				return rec, err
			}
			rec.PK = append(rec.PK, p)
		}
	case storage.OpDropTable:
	case storage.OpCreateIndex, storage.OpCreateOrderedIndex:
		n, err := r.count()
		if err != nil {
			return rec, err
		}
		for i := 0; i < n; i++ {
			c, err := r.str()
			if err != nil {
				return rec, err
			}
			rec.Cols = append(rec.Cols, c)
		}
		// Optional user-assigned index name (absent in records written before
		// named indexes existed).
		if r.remaining() > 0 {
			if rec.Index, err = r.str(); err != nil {
				return rec, err
			}
		}
	case storage.OpCommit:
		if rec.TS, err = r.uvarint(); err != nil {
			return rec, err
		}
		// The transaction tag was added after format v2 shipped; records
		// written before it simply end here, so it decodes as optional.
		if r.remaining() > 0 {
			if rec.Txn, err = r.uvarint(); err != nil {
				return rec, err
			}
		}
	default:
		rid, err := r.uvarint()
		if err != nil {
			return rec, err
		}
		rec.RowID = storage.RowID(rid)
		n, err := r.count()
		if err != nil {
			return rec, err
		}
		if n > 0 {
			rec.Row = make(value.Tuple, 0, n)
			for i := 0; i < n; i++ {
				v, err := r.value()
				if err != nil {
					return rec, err
				}
				rec.Row = append(rec.Row, v)
			}
		}
		// Optional transaction tag, as for OpCommit above.
		if r.remaining() > 0 {
			if rec.Txn, err = r.uvarint(); err != nil {
				return rec, err
			}
		}
	}
	if r.remaining() != 0 {
		return rec, fmt.Errorf("wal: %d trailing bytes in record payload", r.remaining())
	}
	return rec, nil
}

// decodeRecords walks the framed records in data (a segment body, after the
// header). It returns the cleanly decoded prefix, the byte offset just past
// the last good record (relative to data), and how decoding stopped:
//
//   - err == nil, torn == false: the whole body decoded.
//   - err == nil, torn == true: a frame-level failure (impossible length or
//     CRC mismatch) at the returned offset — the signature of a torn write.
//     The caller truncates there if this is the live tail, or treats it as
//     corruption if the segment was sealed.
//   - err != nil: a CRC-valid payload failed to decode — never expected from
//     a torn write, always reported as corruption.
func decodeRecords(data []byte) (recs []storage.LogRecord, good int, torn bool, err error) {
	off := 0
	for len(data)-off >= 8 {
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxRecordLen || int(n) > len(data)-off-8 {
			return recs, off, true, nil
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.Checksum(payload, crcTable) != crc {
			return recs, off, true, nil
		}
		rec, derr := decodeRecordPayload(payload)
		if derr != nil {
			return recs, off, false, fmt.Errorf("wal: record %d: %w", len(recs)+1, derr)
		}
		recs = append(recs, rec)
		off += 8 + int(n)
	}
	if off != len(data) {
		return recs, off, true, nil // partial frame header at the tail
	}
	return recs, off, false, nil
}
