package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/storage"
	"repro/internal/value"
)

// Compact rewrites the log at path as a minimal snapshot of the catalog's
// current state: one create record per table (plus its indexes) followed by
// one insert per live row. The rewrite goes through a temporary file and an
// atomic rename, so a crash mid-compaction leaves the old log intact.
//
// The caller must ensure the catalog is quiescent (no concurrent writers) —
// core.System.Compact detaches the logger around the call.
func Compact(path string, cat *storage.Catalog) error {
	tmp := path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)

	emit := func(r storage.LogRecord) error { return enc.Encode(encodeRecord(r)) }

	for _, name := range cat.Names() {
		tbl, err := cat.Get(name)
		if err != nil {
			return fmt.Errorf("wal: compact: %w", err)
		}
		if err := emit(storage.LogRecord{
			Op: storage.OpCreateTable, Table: tbl.Name(),
			Schema: tbl.Schema(), PK: tbl.PrimaryKey(),
		}); err != nil {
			f.Close()
			return err
		}
		for _, ix := range tbl.IndexMeta() {
			op := storage.OpCreateIndex
			if ix.Ordered {
				op = storage.OpCreateOrderedIndex
			}
			if err := emit(storage.LogRecord{Op: op, Table: tbl.Name(), Cols: ix.Cols, Index: ix.Name}); err != nil {
				f.Close()
				return err
			}
		}
		var scanErr error
		tbl.Scan(func(id storage.RowID, row value.Tuple) bool {
			scanErr = emit(storage.LogRecord{Op: storage.OpInsert, Table: tbl.Name(), RowID: id, Row: row})
			return scanErr == nil
		})
		if scanErr != nil {
			f.Close()
			return scanErr
		}
	}
	// Preserve the MVCC commit clock across the rewrite: replaying the
	// snapshot alone would restart the clock near the row count.
	if err := emit(storage.LogRecord{Op: storage.OpCommit, TS: cat.Clock()}); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
