package wal

import (
	"os"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

func TestCompactShrinksAndPreservesState(t *testing.T) {
	path := tmpWAL(t)
	cat, w := loggedCatalog(t, path)
	tbl, err := cat.Create("T", flightsSchema(), "fno")
	if err != nil {
		t.Fatal(err)
	}
	tbl.CreateIndex("dest") //nolint:errcheck
	// Churn: many inserts and deletes, few survivors.
	var keep []storage.RowID
	for i := 0; i < 200; i++ {
		id, err := tbl.Insert(value.NewTuple(i, "Paris"))
		if err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			keep = append(keep, id)
		} else {
			tbl.Delete(id) //nolint:errcheck
		}
	}
	w.Close() //nolint:errcheck
	before, _ := os.Stat(path)

	if err := Compact(path, cat); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compact did not shrink: %d → %d bytes", before.Size(), after.Size())
	}

	// Recovery from the compacted log reproduces the state.
	cat2 := storage.NewCatalog()
	if _, err := Recover(path, cat2); err != nil {
		t.Fatal(err)
	}
	tbl2, err := cat2.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != len(keep) {
		t.Fatalf("rows = %d, want %d", tbl2.Len(), len(keep))
	}
	for _, id := range keep {
		if _, err := tbl2.Get(id); err != nil {
			t.Errorf("row %d lost: %v", id, err)
		}
	}
	if !tbl2.HasIndex([]int{1}) {
		t.Error("index lost in compaction")
	}
	if pk := tbl2.PrimaryKey(); len(pk) != 1 || pk[0] != "fno" {
		t.Errorf("pk = %v", pk)
	}
}

func TestTableIndexAccessors(t *testing.T) {
	tbl, err := storage.NewTable("T", flightsSchema(), "fno")
	if err != nil {
		t.Fatal(err)
	}
	tbl.CreateIndex("dest")        //nolint:errcheck
	tbl.CreateIndex("fno", "dest") //nolint:errcheck
	ixs := tbl.Indexes()
	if len(ixs) != 2 {
		t.Fatalf("indexes = %v", ixs)
	}
	if tbl2, _ := storage.NewTable("U", flightsSchema()); tbl2.PrimaryKey() != nil {
		t.Error("PK of keyless table should be nil")
	}
}
