package wal

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strings"

	"repro/internal/storage"
	"repro/internal/value"
)

// StateDigest hashes the logical database state: every table's name, schema,
// primary key, indexes, and live rows (sorted by row id — scan order is
// map-iteration order and differs between processes). Two replicas that
// applied the same committed writes produce identical digests.
//
// Commit timestamps are deliberately excluded: read-only transactions
// advance the commit clock without logging, so clocks legitimately diverge
// between replicas that hold byte-identical data.
func StateDigest(cat *storage.Catalog) [32]byte {
	h := sha256.New()
	var buf []byte
	put := func(b []byte) { h.Write(b) }
	putStr := func(s string) {
		buf = binary.AppendUvarint(buf[:0], uint64(len(s)))
		put(buf)
		put([]byte(s))
	}
	putU64 := func(v uint64) {
		buf = binary.AppendUvarint(buf[:0], v)
		put(buf)
	}

	for _, name := range cat.Names() {
		tbl, err := cat.Get(name)
		if err != nil {
			continue // dropped between Names and Get
		}
		putStr("T")
		putStr(tbl.Name())
		sch := tbl.Schema()
		putU64(uint64(len(sch.Columns)))
		for _, c := range sch.Columns {
			putStr(c.Name)
			put([]byte{byte(c.Type)})
		}
		pk := tbl.PrimaryKey()
		putU64(uint64(len(pk)))
		for _, p := range pk {
			putStr(p)
		}
		var ixs []string
		for _, ix := range tbl.IndexMeta() {
			s := strings.Join(ix.Cols, ",")
			if ix.Ordered {
				s = "ord:" + s
			}
			if ix.Name != "" {
				s += "=" + ix.Name
			}
			ixs = append(ixs, s)
		}
		sort.Strings(ixs)
		putU64(uint64(len(ixs)))
		for _, ix := range ixs {
			putStr(ix)
		}

		type rowEnt struct {
			id  storage.RowID
			row value.Tuple
		}
		var rows []rowEnt
		tbl.Scan(func(id storage.RowID, row value.Tuple) bool {
			rows = append(rows, rowEnt{id, row})
			return true
		})
		sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
		putU64(uint64(len(rows)))
		var venc []byte
		for _, r := range rows {
			putU64(uint64(r.id))
			putU64(uint64(len(r.row)))
			for _, v := range r.row {
				venc = appendValue(venc[:0], v)
				put(venc)
			}
		}
	}
	return [32]byte(h.Sum(nil))
}
