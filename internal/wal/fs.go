package wal

import (
	"io"
	"os"
	"strings"
)

// FS is the filesystem seam the segmented log runs on. Production code uses
// the OS implementation returned by OSFS; tests and the fault-injection
// harness substitute wrappers that script write errors, short writes, and
// crashes at exact byte boundaries. Only the operations the log actually
// performs are abstracted.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory so renames and creates within it are
	// durable. Platforms where directories cannot be synced get a pass
	// (best effort, as in most Go WAL implementations).
	SyncDir(dir string) error
}

// File is the subset of *os.File the log needs from an open segment.
type File interface {
	io.Writer
	io.WriterAt
	io.ReaderAt
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

type osFS struct{}

// OSFS returns the real-filesystem implementation of FS.
func OSFS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (os.IsPermission(err) || strings.Contains(err.Error(), "invalid argument")) {
		return nil
	}
	return err
}
