package wal

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

// FuzzWALDecode feeds arbitrary (including randomly corrupted) segment
// images to the binary decoder and replays whatever comes out. The contract
// under corruption is truncate-or-error: decoding must never panic, must
// never report more than it consumed, and every record it does return must
// itself be re-encodable — i.e. structurally intact, not a misparse.
func FuzzWALDecode(f *testing.F) {
	// Seed with a valid segment (header + create + inserts + churn).
	var seed []byte
	seed = append(seed, segHeader(0)...)
	schema := value.NewSchema(value.Col("fno", value.TypeInt), value.Col("dest", value.TypeString))
	recs := []storage.LogRecord{
		{Op: storage.OpCreateTable, Table: "T", Schema: schema, PK: []string{"fno"}},
		{Op: storage.OpCreateIndex, Table: "T", Cols: []string{"dest"}},
		{Op: storage.OpInsert, Table: "T", RowID: 1, Row: value.NewTuple(122, "Paris")},
		{Op: storage.OpInsert, Table: "T", RowID: 2, Row: value.NewTuple(-9, "Rome")},
		{Op: storage.OpUpdate, Table: "T", RowID: 2, Row: value.NewTuple(2.5, "Milan")},
		{Op: storage.OpDelete, Table: "T", RowID: 1},
		{Op: storage.OpInsert, Table: "T", RowID: 3, Row: value.NewTuple(nil, true)},
	}
	for _, r := range recs {
		var err error
		seed, err = appendFramedRecord(seed, r)
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-5])
	f.Add(seed[:segHeaderLen])
	f.Add([]byte{})
	f.Add([]byte("YWAL\x02\x00\x00\x00\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := decodeSegmentBytes(data)
		if d.good < 0 || d.good > int64(len(data)) {
			t.Fatalf("good offset %d out of range [0,%d]", d.good, len(data))
		}
		if d.err != nil && d.torn {
			t.Fatal("decode reported both torn and corrupt")
		}
		// Every returned record must re-encode: a record that decodes but
		// cannot encode again was misparsed, not recovered.
		buf := make([]byte, 0, 256)
		for _, rec := range d.recs {
			var err error
			buf, err = appendFramedRecord(buf[:0], rec)
			if err != nil {
				t.Fatalf("decoded record does not re-encode: %+v: %v", rec, err)
			}
		}
		// Replay must degrade to an error at worst — never a panic.
		cat := storage.NewCatalog()
		for _, rec := range d.recs {
			if err := applyRecord(cat, rec); err != nil {
				break
			}
		}
	})
}
