package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/storage"
)

// Log is the segmented, group-committing write-ahead log (format v2). It
// replaces the single JSON file of the original WAL:
//
//   - Records are length-prefixed, CRC32C-checksummed binary frames instead
//     of JSON lines (see binary.go).
//   - The log is a directory of segment files. The active segment rotates at
//     Options.SegmentBytes; rotation fsyncs and seals the old segment, so
//     everything below the tail is immutable.
//   - Concurrent Appends are batched by a group-commit protocol: the first
//     appender becomes the flush leader and writes (and, under SyncAlways,
//     fsyncs) every record that queued up behind it in one syscall pair;
//     the others park on a commit notification. One fsync is amortized
//     across every lane that reached the log during the previous flush.
//   - Sealed segments are compacted — rewritten as one snapshot segment —
//     without quiescing writers, because appends only ever touch the tail.
//
// A legacy single-file JSON log found at the directory path is migrated in
// place: the file becomes segment 1 (readable by recovery as-is) and new
// binary segments grow behind it; the next compaction absorbs it.
type Log struct {
	dir  string
	opts Options
	fs   FS

	mu       sync.Mutex
	cond     *sync.Cond // signals flushing/compacting ownership changes
	err      error      // sticky write error, surfaced by Err and Close
	closed   bool
	flushing bool

	f    File   // active segment, owned by the current flush leader
	seq  uint64 // active segment sequence number
	size int64  // active segment size in bytes

	sealed []SegmentInfo

	// Log-shipping state (ship.go): watch wakes shippers parked on the tail,
	// pins hold back compaction for connected followers, and the ingest
	// fields track a follower-side segment being received.
	watch      chan struct{}
	pins       []*Pin
	ingestTmp  string // staging path of a snapshot segment being ingested
	ingestSnap bool   // active segment is an ingested snapshot

	pending  []byte     // encoded records awaiting the next flush
	spare    []byte     // recycled batch buffer
	gen      *commitGen // commit notification for the pending batch
	inflight *commitGen // batch currently being written by the leader

	compacting  bool
	compactErr  error // last background compaction failure (reported by Err)
	scratchInfo CompactScratchInfo
	bg          sync.WaitGroup

	stats     CommitStats
	recovered RecoveryInfo
}

// commitGen notifies every appender whose record rode a given flush batch.
type commitGen struct {
	done chan struct{}
	err  error
}

// SyncMode selects the durability point of a commit batch.
type SyncMode int

const (
	// SyncOS hands each commit batch to the OS (one write syscall) without
	// fsync — crash-of-process safe, matching the original WAL's behavior.
	SyncOS SyncMode = iota
	// SyncAlways fsyncs each commit batch before the appenders are released —
	// crash-of-machine safe. Group commit amortizes the fsync across every
	// record that queued during the previous flush.
	SyncAlways
)

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 4 << 20

// Options tunes a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Zero selects DefaultSegmentBytes.
	SegmentBytes int64
	// Sync selects the commit durability point (default SyncOS).
	Sync SyncMode
	// NoGroupCommit disables batching: every Append performs its own write
	// (and fsync, under SyncAlways) while the others wait. This is the
	// fsync-per-record baseline that group commit is benchmarked against.
	NoGroupCommit bool
	// CompactAfter starts a background compaction whenever at least this
	// many sealed segments have accumulated. Zero disables auto-compaction
	// (Compact can still be called explicitly).
	CompactAfter int
	// CompactPoolPages bounds the memory the compaction scratch catalog may
	// hold: the scratch replay spills through a buffer pool of this many
	// frames backed by a throwaway temp directory, so compacting a
	// larger-than-RAM log holds O(pool) memory instead of O(data). Zero
	// keeps the scratch fully in memory.
	CompactPoolPages int
	// FS is the filesystem the log runs on. Nil selects the real one; the
	// fault-injection harness substitutes a wrapper that scripts write
	// errors, short writes and crashes.
	FS FS
	// Replay overrides how recovery applies decoded records. Nil applies
	// each record directly into the catalog. A replication follower installs
	// its Applier here so recovery rebuilds in-flight transaction state
	// instead of surfacing partially-shipped transactions.
	Replay func(storage.LogRecord) error
}

// CommitStats counts the write-side activity of a Log.
type CommitStats struct {
	Records   uint64 // records appended
	Batches   uint64 // write syscalls (commit batches)
	Syncs     uint64 // fsyncs of the active segment
	Rotations uint64 // segments sealed
	Compacts  uint64 // compactions completed
}

// RecoveryInfo describes what OpenLog replayed.
type RecoveryInfo struct {
	Records   int   // records applied
	Segments  int   // segment files replayed
	Torn      bool  // the tail segment had a torn final record
	TornBytes int64 // bytes truncated from the tail
	Migrated  bool  // a legacy JSON log was adopted as segment 1
}

// ErrLogClosed is returned by operations on a closed Log.
var ErrLogClosed = errors.New("wal: log is closed")

// OpenLog opens (creating or migrating as needed) the segmented log rooted
// at dir, replays every segment into cat, truncates a torn tail, and leaves
// the log ready for appending. Sealed segments are decoded in parallel and
// applied in segment order. If dir names a legacy single-file JSON log, the
// file is adopted as segment 1 first.
func OpenLog(dir string, cat *storage.Catalog, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SegmentBytes < segHeaderLen+16 {
		opts.SegmentBytes = segHeaderLen + 16
	}
	if opts.FS == nil {
		opts.FS = OSFS()
	}
	l := &Log{dir: dir, opts: opts, fs: opts.FS, watch: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	if err := l.prepareDir(); err != nil {
		return nil, err
	}
	if err := l.recover(cat); err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.maybeAutoCompactLocked()
	l.mu.Unlock()
	return l, nil
}

// prepareDir ensures l.dir is a log directory, migrating a legacy JSON file
// log in place. Migration is a rename chain — file → dir/00000001.json —
// where every step is atomic and resumable after a crash.
func (l *Log) prepareDir() error {
	legacy := l.dir + ".legacy"
	if fi, err := l.fs.Stat(l.dir); err == nil && !fi.IsDir() {
		// A legacy JSON log: move it aside, make the directory.
		if err := l.fs.Rename(l.dir, legacy); err != nil {
			return err
		}
	} else if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	if err := l.fs.MkdirAll(l.dir, 0o755); err != nil {
		return err
	}
	if _, err := l.fs.Stat(legacy); err == nil {
		dst := filepath.Join(l.dir, jsonName(1))
		if _, err := l.fs.Stat(dst); err == nil {
			return fmt.Errorf("wal: migration conflict: both %s and %s exist", legacy, dst)
		}
		// Make the adopted segment durable before the rename publishes it.
		if f, err := l.fs.OpenFile(legacy, os.O_RDONLY, 0); err == nil {
			f.Sync() //nolint:errcheck // best effort; the data survived this long
			f.Close()
		}
		if err := l.fs.Rename(legacy, dst); err != nil {
			return err
		}
		l.recovered.Migrated = true
	}
	if err := l.fs.SyncDir(filepath.Dir(l.dir)); err != nil {
		return err
	}
	return l.fs.SyncDir(l.dir)
}

// recover replays the segments into cat and opens the active segment.
func (l *Log) recover(cat *storage.Catalog) error {
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	apply := l.opts.Replay
	if apply == nil {
		apply = func(rec storage.LogRecord) error { return applyRecord(cat, rec) }
	}

	// Decode every segment concurrently; the results are applied strictly in
	// segment order below. Sealed segments dominate recovery time, so the
	// decode pipeline is where the parallelism pays.
	results := make([]chan segmentDecode, len(segs))
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	for i := range segs {
		results[i] = make(chan segmentDecode, 1)
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] <- decodeSegmentFile(l.fs, segs[i])
		}(i)
	}

	decoded := make([]segmentDecode, len(segs))
	snapIdx := -1
	for i := range segs {
		decoded[i] = <-results[i]
		if decoded[i].snapshot && decoded[i].err == nil && !decoded[i].torn {
			snapIdx = i
		}
	}

	// Everything below the newest intact snapshot is stale — leftovers of an
	// interrupted compaction. Skip it, but delete the files only once the
	// replay from the snapshot has actually succeeded: if the "snapshot"
	// turns out to be bad, the older chain is the only copy of the data.
	var stale []string
	if snapIdx > 0 {
		for i := 0; i < snapIdx; i++ {
			stale = append(stale, segs[i].Path)
		}
		segs = segs[snapIdx:]
		decoded = decoded[snapIdx:]
	}

	for i := range segs {
		d := decoded[i]
		last := i == len(segs)-1
		if d.err != nil {
			return fmt.Errorf("wal: segment %s: %w", filepath.Base(segs[i].Path), d.err)
		}
		if d.torn {
			switch {
			case segs[i].JSON:
				// The legacy writer could always crash mid-line; its torn
				// tail is tolerated wherever the file sits in the chain.
			case last:
				l.recovered.Torn = true
				l.recovered.TornBytes = segs[i].Bytes - d.good
			default:
				return fmt.Errorf("wal: sealed segment %s is torn at byte %d", filepath.Base(segs[i].Path), d.good)
			}
		}
		for n, rec := range d.recs {
			if err := apply(rec); err != nil {
				return fmt.Errorf("wal: replay %s record %d (%s %s): %w",
					filepath.Base(segs[i].Path), n+1, rec.Op, rec.Table, err)
			}
		}
		l.recovered.Records += len(d.recs)
	}
	l.recovered.Segments = len(segs)
	for _, p := range stale {
		l.fs.Remove(p) //nolint:errcheck // best effort; ignored by future recoveries anyway
	}

	// Open the tail for appending. A binary, non-snapshot tail is truncated
	// past its last good record and continued; a JSON or snapshot tail is
	// sealed and a fresh segment started.
	reuse := -1
	if n := len(segs); n > 0 && !segs[n-1].JSON && !decoded[n-1].snapshot {
		reuse = n - 1
	}
	for i, s := range segs {
		if i == reuse {
			continue
		}
		info := s
		info.Sealed = true
		info.Snapshot = decoded[i].snapshot
		l.sealed = append(l.sealed, info)
	}
	if reuse >= 0 {
		s, d := segs[reuse], decoded[reuse]
		f, err := l.fs.OpenFile(s.Path, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		good := d.good
		if good < segHeaderLen {
			// Crash before the header landed: rewrite it.
			good = 0
		}
		if err := f.Truncate(good); err != nil {
			f.Close()
			return err
		}
		if good == 0 {
			if _, err := f.Write(segHeader(0)); err != nil {
				f.Close()
				return err
			}
			good = segHeaderLen
		} else if _, err := f.Seek(good, 0); err != nil {
			f.Close()
			return err
		}
		if d.torn {
			if err := f.Sync(); err != nil {
				f.Close()
				return err
			}
		}
		l.f, l.seq, l.size = f, s.Seq, good
		if l.size >= l.opts.SegmentBytes {
			// No concurrency yet: take flush ownership directly.
			l.mu.Lock()
			l.flushing = true
			l.rotateOwned()
			l.flushing = false
			err := l.err
			l.mu.Unlock()
			if err != nil {
				return err
			}
		}
		return nil
	}
	// Fresh segment after the existing chain (or an empty directory).
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1].Seq + 1
	}
	return l.createSegment(next)
}

// newSegmentFile creates and headers a segment file.
func newSegmentFile(fsys FS, dir string, seq uint64) (File, error) {
	path := filepath.Join(dir, segName(seq))
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(segHeader(0)); err != nil {
		f.Close()
		return nil, err
	}
	if err := fsys.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// createSegment creates a new active segment (recovery-time helper).
func (l *Log) createSegment(seq uint64) error {
	f, err := newSegmentFile(l.fs, l.dir, seq)
	if err != nil {
		return err
	}
	l.f, l.seq, l.size = f, seq, segHeaderLen
	return nil
}

// Recovered reports what OpenLog replayed.
func (l *Log) Recovered() RecoveryInfo { return l.recovered }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Append encodes and commits one record. Under group commit the caller
// either leads the next flush (writing every queued record in one batch) or
// parks until the leader's commit covers it. Errors are sticky, exactly as
// in the original WAL: the first failure is kept and every later Append
// returns it.
func (l *Log) Append(r storage.LogRecord) error {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.closed {
		l.mu.Unlock()
		return ErrLogClosed
	}

	if l.opts.NoGroupCommit {
		// Naive baseline: one private write (+fsync) per record, serialized.
		buf, err := appendFramedRecord(nil, r)
		if err != nil {
			l.err = err
			l.mu.Unlock()
			return err
		}
		l.stats.Records++
		for l.flushing {
			l.cond.Wait()
		}
		if l.err != nil {
			err := l.err
			l.mu.Unlock()
			return err
		}
		l.flushing = true
		l.mu.Unlock()
		werr := l.writeToActive(buf)
		l.mu.Lock()
		l.finishFlushLocked(len(buf), werr)
		l.flushing = false
		l.cond.Broadcast()
		err = l.err
		l.mu.Unlock()
		if werr != nil {
			return werr
		}
		return err
	}

	if l.pending == nil && l.spare != nil {
		l.pending, l.spare = l.spare[:0], nil
	}
	var encErr error
	l.pending, encErr = appendFramedRecord(l.pending, r)
	if encErr != nil {
		l.err = encErr
		l.mu.Unlock()
		return encErr
	}
	l.stats.Records++
	g := l.gen
	if g == nil {
		g = &commitGen{done: make(chan struct{})}
		l.gen = g
	}
	if l.flushing {
		// A leader is writing; park until our batch is durable.
		l.mu.Unlock()
		<-g.done
		return g.err
	}
	l.drainLocked()
	l.mu.Unlock()
	return g.err
}

// maxPendingBytes bounds the async buffer: an AppendAsync that crosses it
// triggers an inline flush instead of growing the batch without limit.
const maxPendingBytes = 1 << 20

// AppendAsync encodes and enqueues one record WITHOUT waiting for the
// commit: the record rides the next flush (triggered by a concurrent
// Append, a Commit, or the buffer filling up). This is the transaction
// shape of write-ahead logging — mutations stream into the log buffer and
// the caller pays the durability wait once, at its commit point.
func (l *Log) AppendAsync(r storage.LogRecord) error {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.closed {
		l.mu.Unlock()
		return ErrLogClosed
	}
	if l.pending == nil && l.spare != nil {
		l.pending, l.spare = l.spare[:0], nil
	}
	var encErr error
	l.pending, encErr = appendFramedRecord(l.pending, r)
	if encErr != nil {
		l.err = encErr
		l.mu.Unlock()
		return encErr
	}
	l.stats.Records++
	if l.gen == nil {
		l.gen = &commitGen{done: make(chan struct{})}
	}
	if len(l.pending) >= maxPendingBytes && !l.flushing {
		l.drainLocked()
	}
	err := l.err
	l.mu.Unlock()
	return err
}

// Commit blocks until every record appended so far (by any goroutine) has
// reached the log's durability point — the fsync under SyncAlways, the OS
// under SyncOS. Concurrent committers share one flush: the first to arrive
// leads it, the rest park on its notification.
func (l *Log) Commit() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrLogClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if g := l.gen; g != nil {
		if l.flushing {
			l.mu.Unlock()
			<-g.done
			return g.err
		}
		l.drainLocked()
		err := g.err
		l.mu.Unlock()
		return err
	}
	// Nothing queued. If a batch is mid-flight it may carry our records;
	// otherwise everything already reached the durability point.
	if g := l.inflight; g != nil {
		l.mu.Unlock()
		<-g.done
		return g.err
	}
	l.mu.Unlock()
	return nil
}

// drainLocked elects the caller flush leader and writes pending batches
// until none remain. Called with mu held and flushing false; returns with
// mu held and flushing false.
func (l *Log) drainLocked() {
	l.flushing = true
	for l.err == nil && l.gen != nil {
		batch, g := l.pending, l.gen
		l.pending, l.gen = nil, nil
		l.inflight = g
		l.mu.Unlock()
		werr := l.writeToActive(batch)
		l.mu.Lock()
		if l.spare == nil {
			l.spare = batch[:0]
		}
		l.finishFlushLocked(len(batch), werr)
		l.inflight = nil
		g.err = werr
		close(g.done)
	}
	// Release any generation stranded by a sticky error.
	if l.gen != nil && l.err != nil {
		g := l.gen
		l.gen, l.pending = nil, nil
		g.err = l.err
		close(g.done)
	}
	l.flushing = false
	l.cond.Broadcast()
}

// writeToActive performs the batch write (and fsync under SyncAlways)
// against the active segment. Called without mu but with flush ownership,
// so l.f is exclusively ours.
func (l *Log) writeToActive(batch []byte) error {
	if _, err := l.f.Write(batch); err != nil {
		return err
	}
	if l.opts.Sync == SyncAlways {
		return l.f.Sync()
	}
	return nil
}

// finishFlushLocked records a completed batch and rotates if the active
// segment outgrew the threshold. Called with mu held and flush ownership.
func (l *Log) finishFlushLocked(n int, werr error) {
	if werr != nil {
		if l.err == nil {
			l.err = werr
		}
		return
	}
	l.size += int64(n)
	l.stats.Batches++
	if l.opts.Sync == SyncAlways {
		l.stats.Syncs++
	}
	l.bumpWatchLocked()
	if l.size >= l.opts.SegmentBytes {
		l.rotateOwned()
	}
}

// rotateOwned seals the active segment (fsync + close) and opens the next
// one. Called with mu held and flush ownership; the file I/O runs with mu
// released — like batch writes — so appenders keep queueing and the admin
// surface stays responsive during the two fsyncs. Failures are sticky.
func (l *Log) rotateOwned() {
	oldF, oldSeq, oldSize := l.f, l.seq, l.size
	l.mu.Unlock()
	sealErr := oldF.Sync()
	if sealErr == nil {
		sealErr = oldF.Close()
	}
	var newF File
	var createErr error
	if sealErr == nil {
		newF, createErr = newSegmentFile(l.fs, l.dir, oldSeq+1)
	}
	l.mu.Lock()
	if sealErr != nil {
		if l.err == nil {
			l.err = sealErr
		}
		l.bumpWatchLocked()
		return
	}
	if l.opts.Sync != SyncAlways {
		l.stats.Syncs++
	}
	l.sealed = append(l.sealed, SegmentInfo{
		Seq: oldSeq, Path: filepath.Join(l.dir, segName(oldSeq)),
		Bytes: oldSize, Sealed: true,
	})
	l.stats.Rotations++
	if createErr != nil {
		if l.err == nil {
			l.err = createErr
		}
		l.bumpWatchLocked()
		return
	}
	l.f, l.seq, l.size = newF, oldSeq+1, segHeaderLen
	l.bumpWatchLocked()
	l.maybeAutoCompactLocked()
}

// maybeAutoCompactLocked kicks a background compaction when enough sealed
// segments have piled up. Called with mu held.
func (l *Log) maybeAutoCompactLocked() {
	if l.opts.CompactAfter <= 0 || l.compacting || l.closed {
		return
	}
	segs := l.compactableLocked()
	if len(segs) < l.opts.CompactAfter {
		return
	}
	l.compacting = true
	l.bg.Add(1)
	go func() {
		defer l.bg.Done()
		err := l.compactSegments(segs)
		l.mu.Lock()
		l.compacting = false
		if err != nil {
			l.compactErr = err
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}()
}

// Compact seals the active segment and rewrites every sealed segment as one
// snapshot segment. Writers are NOT quiesced: concurrent appends land in the
// fresh active segment and survive compaction untouched.
func (l *Log) Compact() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrLogClosed
	}
	for l.flushing {
		l.cond.Wait()
	}
	if l.gen != nil {
		l.drainLocked()
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.size > segHeaderLen {
		l.flushing = true
		l.rotateOwned()
		l.flushing = false
		l.cond.Broadcast()
		if l.err != nil {
			err := l.err
			l.mu.Unlock()
			return err
		}
		// Appends that arrived during the rotation window parked on a fresh
		// commit generation with no elected leader (they saw flushing held
		// by us). Drain it, or — if every writer goroutine is parked — no
		// later Append would ever come to wake them.
		if l.gen != nil {
			l.drainLocked()
			if l.err != nil {
				err := l.err
				l.mu.Unlock()
				return err
			}
		}
	}
	for l.compacting { // let a background run finish, then fold in the rest
		l.cond.Wait()
	}
	segs := l.compactableLocked()
	if len(segs) == 0 {
		err := l.compactErr
		l.compactErr = nil
		l.mu.Unlock()
		return err
	}
	l.compacting = true
	l.mu.Unlock()

	err := l.compactSegments(segs)

	l.mu.Lock()
	l.compacting = false
	l.cond.Broadcast()
	if err == nil {
		err = l.compactErr
		l.compactErr = nil
	}
	l.mu.Unlock()
	return err
}

// compactSegments replays segs (a sealed prefix of the log) into a scratch
// catalog and replaces them with one snapshot segment named after the last
// sequence in the prefix. The rename is atomic; stale files are removed
// afterwards, and recovery ignores anything older than a snapshot, so a
// crash at any point leaves a recoverable chain.
func (l *Log) compactSegments(segs []SegmentInfo) error {
	scratch := storage.NewCatalog()
	var info CompactScratchInfo
	if n := l.opts.CompactPoolPages; n > 0 {
		// Bound the scratch replay: tuples page out to a throwaway temp
		// directory through a pool of n frames, so compacting a log whose
		// live set exceeds RAM holds O(pool) memory. The scratch heap files
		// go through the plain OS filesystem, not l.fs — they are not
		// durable state, and a crash mid-scratch-write is indistinguishable
		// from a crash before the snapshot rename.
		dir, err := os.MkdirTemp("", "youtopia-compact-")
		if err != nil {
			return fmt.Errorf("wal: compact: scratch dir: %w", err)
		}
		defer os.RemoveAll(dir) //nolint:errcheck // best-effort temp cleanup
		defer scratch.CloseSpill()
		if err := scratch.EnableSpill(dir, n, nil); err != nil {
			return fmt.Errorf("wal: compact: scratch spill: %w", err)
		}
		info.Pooled = true
	}
	for _, s := range segs {
		d := decodeSegmentFile(l.fs, s)
		if d.err != nil {
			return fmt.Errorf("wal: compact: segment %s: %w", filepath.Base(s.Path), d.err)
		}
		if d.torn && !s.JSON {
			return fmt.Errorf("wal: compact: sealed segment %s is torn", filepath.Base(s.Path))
		}
		for _, rec := range d.recs {
			if err := applyRecord(scratch, rec); err != nil {
				return fmt.Errorf("wal: compact: replay %s: %w", filepath.Base(s.Path), err)
			}
		}
	}
	last := segs[len(segs)-1]
	size, err := writeSnapshotSegment(l.fs, l.dir, last.Seq, scratch)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	if ps, ok := scratch.PoolStats(); ok {
		// Captured after the snapshot write — the point of peak scratch
		// pressure — as evidence the replay stayed within the pool bound.
		info.Frames = ps.Capacity
		info.Resident = ps.Resident
		info.HeapPages = ps.HeapPages
	}
	for _, s := range segs {
		if s.Seq == last.Seq && !s.JSON {
			continue // replaced by the snapshot via rename
		}
		l.fs.Remove(s.Path) //nolint:errcheck // stale; recovery ignores leftovers
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return err
	}

	snap := SegmentInfo{
		Seq: last.Seq, Path: filepath.Join(l.dir, segName(last.Seq)),
		Bytes: size, Sealed: true, Snapshot: true,
	}
	l.mu.Lock()
	// Sealed segments may have accumulated behind us; replace only the
	// prefix we absorbed.
	var keep []SegmentInfo
	for _, s := range l.sealed {
		if s.Seq > last.Seq {
			keep = append(keep, s)
		}
	}
	l.sealed = append([]SegmentInfo{snap}, keep...)
	l.stats.Compacts++
	l.scratchInfo = info
	l.mu.Unlock()
	return nil
}

// CompactScratchInfo describes the scratch catalog of the most recent
// completed compaction: whether it ran with a bounded buffer pool, and how
// much of the replayed state was resident versus spilled when the snapshot
// was written. Tests use it to pin the O(pool) memory bound.
type CompactScratchInfo struct {
	Pooled    bool // scratch ran with CompactPoolPages frames
	Frames    int  // pool frames configured
	Resident  int  // frames holding a page after the snapshot write
	HeapPages int  // scratch heap pages spilled to the temp directory
}

// CompactScratch returns scratch-catalog telemetry from the last completed
// compaction (zero value if none has run).
func (l *Log) CompactScratch() CompactScratchInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.scratchInfo
}

// Sync flushes any pending batch and fsyncs the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	for l.flushing {
		l.cond.Wait()
	}
	if l.gen != nil {
		l.drainLocked()
	}
	if l.err != nil {
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return err
	}
	l.stats.Syncs++
	return nil
}

// Err returns the sticky write error (or the last background compaction
// failure), if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	return l.compactErr
}

// Close drains pending batches, fsyncs and closes the active segment, and
// waits for background compaction. The returned error includes any write
// error from the lifetime of the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrLogClosed
	}
	for l.flushing {
		l.cond.Wait()
	}
	if l.gen != nil {
		l.drainLocked()
	}
	l.closed = true
	l.bumpWatchLocked()
	err := l.err
	if l.f != nil {
		syncErr := l.f.Sync()
		closeErr := l.f.Close()
		if err == nil {
			err = syncErr
		}
		if err == nil {
			err = closeErr
		}
	}
	l.mu.Unlock()
	l.bg.Wait()
	if err == nil {
		err = l.compactErr
	}
	return err
}

// Stats returns a snapshot of the commit counters.
func (l *Log) Stats() CommitStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Segments lists the on-disk segments, sealed first, active last. Between an
// ingest seal and the next ingest open there is no active segment.
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs := append([]SegmentInfo(nil), l.sealed...)
	if l.f == nil {
		return segs
	}
	return append(segs, SegmentInfo{
		Seq: l.seq, Path: filepath.Join(l.dir, segName(l.seq)), Bytes: l.size,
	})
}
