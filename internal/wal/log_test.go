package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/value"
)

func openLog(t *testing.T, dir string, opts Options) (*Log, *storage.Catalog) {
	t.Helper()
	cat := storage.NewCatalog()
	l, err := OpenLog(dir, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, cat
}

// attach wires every catalog mutation into the log, as core does.
func attach(cat *storage.Catalog, l *Log) {
	cat.SetLog(func(r storage.LogRecord) { l.Append(r) }) //nolint:errcheck
}

func TestBinaryRecordRoundTrip(t *testing.T) {
	schema := value.NewSchema(
		value.Col("i", value.TypeInt), value.Col("s", value.TypeString),
		value.Col("f", value.TypeFloat), value.Col("b", value.TypeBool),
	)
	recs := []storage.LogRecord{
		{Op: storage.OpCreateTable, Table: "T", Schema: schema, PK: []string{"i"}},
		{Op: storage.OpDropTable, Table: "Gone"},
		{Op: storage.OpCreateIndex, Table: "T", Cols: []string{"s", "f"}},
		{Op: storage.OpCreateOrderedIndex, Table: "T", Cols: []string{"i"}},
		{Op: storage.OpInsert, Table: "T", RowID: 42, Row: value.NewTuple(-7, "x'y\"z", 2.5, true)},
		{Op: storage.OpUpdate, Table: "T", RowID: 42, Row: value.NewTuple(8, "", -0.0, false)},
		{Op: storage.OpDelete, Table: "T", RowID: 42},
		{Op: storage.OpRestore, Table: "T", RowID: 42, Row: value.NewTuple(nil, nil, nil, nil)},
	}
	var buf []byte
	var err error
	for _, r := range recs {
		buf, err = appendFramedRecord(buf, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, good, torn, err := decodeRecords(buf)
	if err != nil || torn || good != len(buf) {
		t.Fatalf("decode: err=%v torn=%v good=%d/%d", err, torn, good, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		g := got[i]
		if g.Op != r.Op || g.Table != r.Table || g.RowID != r.RowID {
			t.Errorf("record %d: got %+v want %+v", i, g, r)
		}
		if len(g.Row) != len(r.Row) {
			t.Fatalf("record %d row arity %d != %d", i, len(g.Row), len(r.Row))
		}
		for c := range r.Row {
			if !g.Row[c].Identical(r.Row[c]) {
				t.Errorf("record %d col %d: %v != %v", i, c, g.Row[c], r.Row[c])
			}
		}
		if r.Op == storage.OpCreateTable {
			if g.Schema.String() != r.Schema.String() {
				t.Errorf("schema %v != %v", g.Schema, r.Schema)
			}
			if fmt.Sprint(g.PK) != fmt.Sprint(r.PK) {
				t.Errorf("pk %v != %v", g.PK, r.PK)
			}
		}
	}
}

func TestLogRoundTripAndRowIDContinuity(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, cat := openLog(t, dir, Options{})
	attach(cat, l)

	tbl, err := cat.Create("Flights", flightsSchema(), "fno")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("dest"); err != nil {
		t.Fatal(err)
	}
	id1, _ := tbl.Insert(value.NewTuple(122, "Paris"))
	id2, _ := tbl.Insert(value.NewTuple(136, "Rome"))
	tbl.Update(id2, value.NewTuple(136, "Milan")) //nolint:errcheck
	id3, _ := tbl.Insert(value.NewTuple(140, "Oslo"))
	tbl.Delete(id3) //nolint:errcheck
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, cat2 := openLog(t, dir, Options{})
	defer l2.Close()
	if n := l2.Recovered().Records; n != 7 {
		t.Errorf("recovered %d records", n)
	}
	tbl2, err := cat2.Get("Flights")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 2 {
		t.Fatalf("recovered %d rows", tbl2.Len())
	}
	row, err := tbl2.Get(id1)
	if err != nil || row[1].Str() != "Paris" {
		t.Errorf("row1 = %v, %v", row, err)
	}
	row, err = tbl2.Get(id2)
	if err != nil || row[1].Str() != "Milan" {
		t.Errorf("row2 = %v, %v", row, err)
	}
	if !tbl2.HasIndex([]int{1}) {
		t.Error("index not recovered")
	}
	if _, err := tbl2.Insert(value.NewTuple(122, "Dup")); err == nil {
		t.Error("PK not recovered")
	}
	newID, err := tbl2.Insert(value.NewTuple(150, "Lima"))
	if err != nil {
		t.Fatal(err)
	}
	if newID <= id3 {
		t.Errorf("rowid %d reused (last was %d)", newID, id3)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, cat := openLog(t, dir, Options{SegmentBytes: 256})
	attach(cat, l)
	tbl, err := cat.Create("T", flightsSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := tbl.Insert(value.NewTuple(i, "Paris")); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if len(segs) < 4 {
		t.Fatalf("expected several segments at 256-byte rotation, got %d", len(segs))
	}
	if st := l.Stats(); st.Rotations == 0 {
		t.Error("no rotations counted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, cat2 := openLog(t, dir, Options{SegmentBytes: 256})
	defer l2.Close()
	if got := l2.Recovered().Segments; got != len(segs) {
		t.Errorf("replayed %d segments, want %d", got, len(segs))
	}
	tbl2, err := cat2.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 100 {
		t.Errorf("recovered %d rows", tbl2.Len())
	}
}

func TestGroupCommitConcurrentDurable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, cat := openLog(t, dir, Options{Sync: SyncAlways})
	attach(cat, l)
	if _, err := cat.Create("T", flightsSchema()); err != nil {
		t.Fatal(err)
	}

	// Transaction shape: each writer streams 4 records into the buffer and
	// pays the durability wait once, at Commit. Even fully serialized that
	// guarantees ≥4 records per flush; concurrent committers share flushes.
	const writers, txns, perTxn = 8, 25, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				for k := 0; k < perTxn; k++ {
					n := (w*txns+i)*perTxn + k
					rec := storage.LogRecord{
						Op: storage.OpInsert, Table: "T",
						RowID: storage.RowID(1 + n),
						Row:   value.NewTuple(n, "Paris"),
					}
					if err := l.AppendAsync(rec); err != nil {
						t.Error(err)
						return
					}
				}
				if err := l.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Records != 1+writers*txns*perTxn {
		t.Fatalf("records = %d", st.Records)
	}
	if st.Syncs > st.Records/perTxn+1 {
		t.Errorf("group commit did not amortize: %d fsyncs for %d records", st.Syncs, st.Records)
	}
	t.Logf("group commit: %d records in %d batches (%d fsyncs), %.1f records/fsync",
		st.Records, st.Batches, st.Syncs, float64(st.Records)/float64(st.Syncs))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, cat2 := openLog(t, dir, Options{})
	defer l2.Close()
	tbl2, err := cat2.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != writers*txns*perTxn {
		t.Errorf("recovered %d rows, want %d", tbl2.Len(), writers*txns*perTxn)
	}
}

// TestConcurrentSynchronousAppend: plain Append from many goroutines — the
// per-record commit path — stays correct under contention (batching is
// scheduler-dependent and not asserted here).
func TestConcurrentSynchronousAppend(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, cat := openLog(t, dir, Options{Sync: SyncAlways, SegmentBytes: 4096})
	attach(cat, l)
	if _, err := cat.Create("T", flightsSchema()); err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				n := w*each + i
				err := l.Append(storage.LogRecord{
					Op: storage.OpInsert, Table: "T",
					RowID: storage.RowID(1 + n), Row: value.NewTuple(n, "Rome"),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, cat2 := openLog(t, dir, Options{})
	defer l2.Close()
	tbl2, err := cat2.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != writers*each {
		t.Errorf("recovered %d rows, want %d", tbl2.Len(), writers*each)
	}
}

func TestCompactSealedSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, cat := openLog(t, dir, Options{SegmentBytes: 256})
	attach(cat, l)
	tbl, err := cat.Create("T", flightsSchema(), "fno")
	if err != nil {
		t.Fatal(err)
	}
	tbl.CreateIndex("dest") //nolint:errcheck
	var keep []storage.RowID
	for i := 0; i < 200; i++ {
		id, err := tbl.Insert(value.NewTuple(i, "Paris"))
		if err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			keep = append(keep, id)
		} else {
			tbl.Delete(id) //nolint:errcheck
		}
	}
	before := len(l.Segments())
	var beforeBytes int64
	for _, s := range l.Segments() {
		beforeBytes += s.Bytes
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	segs := l.Segments()
	if len(segs) != 2 { // snapshot + fresh active
		t.Fatalf("segments after compact = %d (before %d): %+v", len(segs), before, segs)
	}
	if !segs[0].Snapshot {
		t.Error("first segment is not a snapshot")
	}
	var afterBytes int64
	for _, s := range segs {
		afterBytes += s.Bytes
	}
	if afterBytes >= beforeBytes {
		t.Errorf("compact did not shrink: %d → %d bytes", beforeBytes, afterBytes)
	}
	// On-disk file set matches the in-memory view.
	onDisk, err := listSegments(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != 2 {
		t.Errorf("files on disk = %+v", onDisk)
	}
	// Appends continue after compaction.
	if _, err := tbl.Insert(value.NewTuple(999, "Oslo")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, cat2 := openLog(t, dir, Options{})
	defer l2.Close()
	tbl2, err := cat2.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != len(keep)+1 {
		t.Fatalf("rows = %d, want %d", tbl2.Len(), len(keep)+1)
	}
	for _, id := range keep {
		if _, err := tbl2.Get(id); err != nil {
			t.Errorf("row %d lost: %v", id, err)
		}
	}
	if !tbl2.HasIndex([]int{1}) {
		t.Error("index lost in compaction")
	}
	if pk := tbl2.PrimaryKey(); len(pk) != 1 || pk[0] != "fno" {
		t.Errorf("pk = %v", pk)
	}
}

func TestAutoCompactInBackground(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, cat := openLog(t, dir, Options{SegmentBytes: 256, CompactAfter: 3})
	attach(cat, l)
	tbl, err := cat.Create("T", flightsSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := tbl.Insert(value.NewTuple(i, "Paris")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Compacts == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if l.Stats().Compacts == 0 {
		t.Fatal("background compaction never ran")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, cat2 := openLog(t, dir, Options{})
	defer l2.Close()
	tbl2, err := cat2.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 300 {
		t.Errorf("recovered %d rows", tbl2.Len())
	}
}

func TestMigrationFromLegacyJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")

	// First life: the original JSON WAL.
	cat := storage.NewCatalog()
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cat.SetLog(func(r storage.LogRecord) { w.Append(r) }) //nolint:errcheck
	tbl, err := cat.Create("T", flightsSchema(), "fno")
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert(value.NewTuple(1, "Paris")) //nolint:errcheck
	tbl.Insert(value.NewTuple(2, "Rome"))  //nolint:errcheck
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: the segmented log migrates the file in place.
	l, cat2 := openLog(t, path, Options{})
	if !l.Recovered().Migrated {
		t.Error("migration not reported")
	}
	if fi, err := os.Stat(path); err != nil || !fi.IsDir() {
		t.Fatalf("path is not a directory after migration: %v %v", fi, err)
	}
	if _, err := os.Stat(filepath.Join(path, jsonName(1))); err != nil {
		t.Errorf("adopted JSON segment missing: %v", err)
	}
	attach(cat2, l)
	tbl2, err := cat2.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 2 {
		t.Fatalf("migrated rows = %d", tbl2.Len())
	}
	// New records land in a binary segment behind the JSON one.
	if _, err := tbl2.Insert(value.NewTuple(3, "Oslo")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Third life: mixed JSON + binary chain replays in order.
	l3, cat3 := openLog(t, path, Options{})
	tbl3, err := cat3.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl3.Len() != 3 {
		t.Fatalf("mixed-chain rows = %d", tbl3.Len())
	}
	// Compaction absorbs the JSON segment.
	if err := l3.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(path, jsonName(1))); !os.IsNotExist(err) {
		t.Errorf("JSON segment survived compaction: %v", err)
	}
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
	l4, cat4 := openLog(t, path, Options{})
	defer l4.Close()
	tbl4, err := cat4.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl4.Len() != 3 {
		t.Errorf("post-compaction rows = %d", tbl4.Len())
	}
}

// TestMigrationTornJSONTail: a legacy log that crashed mid-append migrates
// cleanly — the torn line is dropped exactly as Recover dropped it.
func TestMigrationTornJSONTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")
	cat := storage.NewCatalog()
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cat.SetLog(func(r storage.LogRecord) { w.Append(r) }) //nolint:errcheck
	tbl, _ := cat.Create("T", flightsSchema())
	tbl.Insert(value.NewTuple(1, "a")) //nolint:errcheck
	w.Close()                          //nolint:errcheck
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"insert","table":"T","rid":2,"row":[{"t":"i","i"`) //nolint:errcheck
	f.Close()

	l, cat2 := openLog(t, path, Options{})
	defer l.Close()
	tbl2, err := cat2.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 1 {
		t.Errorf("rows = %d", tbl2.Len())
	}
}

// TestInterruptedCompactionRecovers: a snapshot was published but the stale
// segments it absorbed were never deleted (crash in between). Recovery must
// start at the snapshot and ignore — then delete — the stale prefix.
func TestInterruptedCompactionRecovers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	// CompactPoolPages keeps the crash/recovery coverage on the pooled
	// scratch path; the scratch is non-durable, so the recovery story must
	// be identical either way.
	l, cat := openLog(t, dir, Options{SegmentBytes: 256, CompactPoolPages: 4})
	attach(cat, l)
	tbl, _ := cat.Create("T", flightsSchema())
	for i := 0; i < 60; i++ {
		tbl.Insert(value.NewTuple(i, "Paris")) //nolint:errcheck
	}
	// Save a sealed segment, compact, then put the stale file back.
	segs := l.Segments()
	if len(segs) < 3 {
		t.Fatalf("need sealed segments, got %+v", segs)
	}
	stale, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	stalePath := segs[0].Path
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stalePath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, cat2 := openLog(t, dir, Options{})
	defer l2.Close()
	tbl2, err := cat2.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 60 {
		t.Errorf("rows = %d (stale segment replayed?)", tbl2.Len())
	}
	if _, err := os.Stat(stalePath); !os.IsNotExist(err) {
		t.Errorf("stale pre-snapshot segment not cleaned up: %v", err)
	}
}

func TestAppendAfterCloseLog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, _ := openLog(t, dir, Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(storage.LogRecord{Op: storage.OpDropTable, Table: "x"}); err == nil {
		t.Error("append after close succeeded")
	}
}

func TestParallelRecoveryManySegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, cat := openLog(t, dir, Options{SegmentBytes: 128})
	attach(cat, l)
	tbl, _ := cat.Create("T", flightsSchema())
	const rows = 500
	for i := 0; i < rows; i++ {
		if _, err := tbl.Insert(value.NewTuple(i, fmt.Sprintf("city-%d", i%7))); err != nil {
			t.Fatal(err)
		}
	}
	nsegs := len(l.Segments())
	if nsegs < 10 {
		t.Fatalf("want many segments, got %d", nsegs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, cat2 := openLog(t, dir, Options{SegmentBytes: 128})
	defer l2.Close()
	tbl2, err := cat2.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != rows {
		t.Fatalf("recovered %d rows, want %d", tbl2.Len(), rows)
	}
	for i := 0; i < rows; i++ {
		row, err := tbl2.Get(storage.RowID(i + 1))
		if err != nil {
			t.Fatalf("row %d: %v", i+1, err)
		}
		if row[0].Int() != int64(i) || row[1].Str() != fmt.Sprintf("city-%d", i%7) {
			t.Errorf("row %d = %v", i+1, row)
		}
	}
}

// TestCompactRotationDrainsParkedAppends is the regression test for a group-
// commit deadlock: Compact takes flush ownership to rotate the active
// segment, and any Append arriving inside that window parks on a fresh
// commit generation with no elected leader. Compact must drain that
// generation after releasing ownership — if every writer goroutine is
// parked there, no later Append will ever come along to do it.
func TestCompactRotationDrainsParkedAppends(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, _ := openLog(t, dir, Options{SegmentBytes: 256})
	defer l.Close()

	rec := storage.LogRecord{Op: storage.OpInsert, Table: "T", RowID: 1,
		Row: value.NewTuple(1, "payload payload payload")}

	const writers, each = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.Append(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Compact concurrently and repeatedly: each run rotates the (tiny)
	// active segment while appenders race into the ownership window.
	for i := 0; i < 20; i++ {
		if err := l.Compact(); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("appenders deadlocked: a commit generation parked during Compact's rotation window was never drained")
	}
	if got := l.Stats().Records; got != writers*each {
		t.Fatalf("records = %d, want %d", got, writers*each)
	}
}

// TestCompactPoolBoundsScratchMemory: compacting a log whose live set is
// several times larger than the scratch pool must hold O(pool frames)
// tuples in memory, not O(rows) — the scratch catalog pages everything
// else out to a throwaway temp directory.
func TestCompactPoolBoundsScratchMemory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	const poolFrames = 8
	l, cat := openLog(t, dir, Options{SegmentBytes: 128 << 10, CompactPoolPages: poolFrames})
	attach(cat, l)
	tbl, err := cat.Create("T", flightsSchema(), "fno")
	if err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("x", 200)
	const rows = 4000
	for i := 0; i < rows; i++ {
		if _, err := tbl.Insert(value.NewTuple(i, payload)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	info := l.CompactScratch()
	if !info.Pooled {
		t.Fatal("compaction scratch did not run pooled")
	}
	if info.Frames != poolFrames {
		t.Fatalf("scratch frames = %d, want %d", info.Frames, poolFrames)
	}
	if info.Resident > info.Frames {
		t.Fatalf("resident %d exceeds pool of %d frames", info.Resident, info.Frames)
	}
	// The dataset must genuinely dwarf the pool, or the bound is vacuous.
	if info.HeapPages < 4*poolFrames {
		t.Fatalf("scratch spilled only %d heap pages for %d frames; dataset too small to prove the bound", info.HeapPages, poolFrames)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The bounded scratch must still produce a faithful snapshot.
	l2, cat2 := openLog(t, dir, Options{})
	defer l2.Close()
	tbl2, err := cat2.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != rows {
		t.Fatalf("rows after recovery = %d, want %d", tbl2.Len(), rows)
	}
	for _, probe := range []int{0, rows / 2, rows - 1} {
		if _, row, ok := tbl2.LookupPK(value.NewTuple(probe)); !ok || len(row) != 2 {
			t.Fatalf("pk %d lost after pooled compaction", probe)
		}
	}
}
