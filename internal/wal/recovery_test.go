package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

// buildSegment writes a single-segment log with one create and n inserts,
// closes it, and returns the segment file's bytes plus the offsets at which
// each record frame ends (relative to the file start).
func buildSegment(t *testing.T, n int) (data []byte, recordEnds []int) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "wal")
	l, cat := openLog(t, dir, Options{})
	attach(cat, l)
	tbl, err := cat.Create("T", flightsSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert(value.NewTuple(i, "Paris")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	off := segHeaderLen
	for off < len(data) {
		frameLen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 8 + frameLen
		recordEnds = append(recordEnds, off)
	}
	if off != len(data) {
		t.Fatalf("frame walk ended at %d of %d", off, len(data))
	}
	return data, recordEnds
}

// TestRecoverEveryTruncationPoint cuts the segment at every byte boundary —
// the exhaustive kill-9 simulation — and asserts replay recovers exactly the
// record prefix that fully fits, then that the truncated log accepts new
// appends and survives another restart.
func TestRecoverEveryTruncationPoint(t *testing.T) {
	data, ends := buildSegment(t, 5)
	base := t.TempDir()
	for cut := 0; cut <= len(data); cut++ {
		wantRecs := 0
		for _, e := range ends {
			if e <= cut {
				wantRecs++
			}
		}
		dir := filepath.Join(base, "w")
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cat := storage.NewCatalog()
		l, err := OpenLog(dir, cat, Options{})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if got := l.Recovered().Records; got != wantRecs {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, got, wantRecs)
		}
		wantRows := wantRecs - 1 // first record is the create
		if wantRecs == 0 {
			wantRows = 0
			if cat.Has("T") {
				t.Fatalf("cut=%d: table exists with no records replayed", cut)
			}
		} else {
			tbl, err := cat.Get("T")
			if err != nil {
				t.Fatalf("cut=%d: %v", cut, err)
			}
			if tbl.Len() != wantRows {
				t.Fatalf("cut=%d: %d rows, want %d", cut, tbl.Len(), wantRows)
			}
		}
		// The truncated log must keep working: append, restart, recount.
		attach(cat, l)
		if wantRecs == 0 {
			if _, err := cat.Create("T", flightsSchema()); err != nil {
				t.Fatalf("cut=%d: %v", cut, err)
			}
		}
		tbl, _ := cat.Get("T")
		if _, err := tbl.Insert(value.NewTuple(900+cut, "Oslo")); err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		cat2 := storage.NewCatalog()
		l2, err := OpenLog(dir, cat2, Options{})
		if err != nil {
			t.Fatalf("cut=%d reopen: %v", cut, err)
		}
		tbl2, err := cat2.Get("T")
		if err != nil {
			t.Fatalf("cut=%d reopen: %v", cut, err)
		}
		if tbl2.Len() != wantRows+1 {
			t.Fatalf("cut=%d reopen: %d rows, want %d", cut, tbl2.Len(), wantRows+1)
		}
		l2.Close() //nolint:errcheck
	}
}

// TestRecoverEveryByteFlip flips each byte of the tail segment in turn: the
// CRC (or an impossible length) must catch it, and replay must yield a clean
// prefix of the original records — never an error, never a mangled row.
func TestRecoverEveryByteFlip(t *testing.T) {
	data, _ := buildSegment(t, 5)
	base := t.TempDir()
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		dir := filepath.Join(base, "w")
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(1)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		cat := storage.NewCatalog()
		l, err := OpenLog(dir, cat, Options{})
		if err != nil {
			t.Fatalf("flip@%d: %v", i, err)
		}
		// Whatever survived must be an intact prefix: every recovered row is
		// one of the originals, with its original payload.
		if cat.Has("T") {
			tbl, _ := cat.Get("T")
			tbl.Scan(func(id storage.RowID, row value.Tuple) bool {
				if len(row) != 2 || row[0].Int() != int64(id-1) || row[1].Str() != "Paris" {
					t.Fatalf("flip@%d: mangled row %d = %v", i, id, row)
				}
				return true
			})
		}
		l.Close() //nolint:errcheck
	}
}

// TestSealedSegmentCorruptionFails: damage anywhere in a sealed (non-tail)
// segment is corruption, not a torn write — recovery must refuse.
func TestSealedSegmentCorruptionFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, cat := openLog(t, dir, Options{SegmentBytes: 128})
	attach(cat, l)
	tbl, _ := cat.Create("T", flightsSchema())
	for i := 0; i < 40; i++ {
		tbl.Insert(value.NewTuple(i, "Paris")) //nolint:errcheck
	}
	if len(l.Segments()) < 3 {
		t.Fatalf("need sealed segments: %+v", l.Segments())
	}
	sealedPath := l.Segments()[0].Path
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Truncate the sealed segment mid-record.
	data, err := os.ReadFile(sealedPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sealedPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(dir, storage.NewCatalog(), Options{}); err == nil {
		t.Error("torn sealed segment accepted")
	}

	// A byte flip inside a sealed segment must also refuse.
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0xff
	if err := os.WriteFile(sealedPath, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(dir, storage.NewCatalog(), Options{}); err == nil {
		t.Error("corrupt sealed segment accepted")
	}

	// Restoring the original bytes recovers cleanly.
	if err := os.WriteFile(sealedPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, cat2 := openLog(t, dir, Options{})
	defer l2.Close()
	if tbl2, err := cat2.Get("T"); err != nil || tbl2.Len() != 40 {
		t.Errorf("restore: %v, rows=%d", err, tbl2.Len())
	}
	_ = cat
}
