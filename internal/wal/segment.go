package wal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/storage"
	"repro/internal/value"
)

// Segment files live inside the log directory and are named by sequence
// number: "00000001.wal" (binary, format v2) or "00000001.json" (a legacy
// JSON log adopted during migration). Higher sequence numbers are strictly
// newer; the highest segment is the live tail, everything below it is sealed
// (fsynced at rotation and never written again).

// SegmentInfo describes one on-disk segment (admin surface).
type SegmentInfo struct {
	Seq      uint64
	Path     string
	Bytes    int64
	Sealed   bool
	Snapshot bool
	JSON     bool // legacy JSON segment awaiting compaction
}

func segName(seq uint64) string  { return fmt.Sprintf("%08d.wal", seq) }
func jsonName(seq uint64) string { return fmt.Sprintf("%08d.json", seq) }

// parseSegName extracts (seq, isJSON) from a segment file name.
func parseSegName(name string) (seq uint64, isJSON, ok bool) {
	var ext string
	switch {
	case strings.HasSuffix(name, ".wal"):
		ext = ".wal"
	case strings.HasSuffix(name, ".json"):
		ext = ".json"
		isJSON = true
	default:
		return 0, false, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(name, ext), 10, 64)
	if err != nil || n == 0 {
		return 0, false, false
	}
	return n, isJSON, true
}

// listSegments returns the segments in dir in replay (sequence) order.
func listSegments(fsys FS, dir string) ([]SegmentInfo, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []SegmentInfo
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		seq, isJSON, ok := parseSegName(e.Name())
		if !ok {
			continue // tmp files, strays
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, SegmentInfo{
			Seq: seq, Path: filepath.Join(dir, e.Name()),
			Bytes: info.Size(), JSON: isJSON,
		})
	}
	// A .json/.wal twin at the same sequence is a compaction interrupted
	// between publishing the snapshot and removing the absorbed JSON
	// segment: the JSON sorts first and recovery's snapshot pruning drops
	// it. Same-type duplicates cannot happen and are reported.
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Seq != segs[j].Seq {
			return segs[i].Seq < segs[j].Seq
		}
		return segs[i].JSON && !segs[j].JSON
	})
	for i := 1; i < len(segs); i++ {
		if segs[i].Seq == segs[i-1].Seq && segs[i].JSON == segs[i-1].JSON {
			return nil, fmt.Errorf("wal: duplicate segment sequence %d (%s and %s)",
				segs[i].Seq, segs[i-1].Path, segs[i].Path)
		}
	}
	return segs, nil
}

// segmentDecode is the outcome of decoding one whole segment file.
type segmentDecode struct {
	recs     []storage.LogRecord
	good     int64 // file offset just past the last good record
	torn     bool  // frame-level failure at good (torn write signature)
	snapshot bool
	err      error
}

// decodeSegmentBytes decodes a binary segment image (header + records).
// A header that is missing or garbled counts as torn at offset 0 — the
// signature of a crash immediately after segment creation.
func decodeSegmentBytes(data []byte) segmentDecode {
	if len(data) < segHeaderLen {
		return segmentDecode{torn: true}
	}
	flags, err := parseSegHeader(data)
	if err != nil {
		return segmentDecode{torn: true}
	}
	recs, good, torn, derr := decodeRecords(data[segHeaderLen:])
	return segmentDecode{
		recs: recs, good: int64(segHeaderLen + good), torn: torn,
		snapshot: flags&flagSnapshot != 0, err: derr,
	}
}

// decodeJSONSegment decodes a legacy JSON-lines log adopted as a segment.
// A torn final line is tolerated (the old writer could crash mid-append);
// anything malformed before that is corruption, exactly as in Recover.
func decodeJSONSegment(data []byte) segmentDecode {
	var recs []storage.LogRecord
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return segmentDecode{recs: recs, good: int64(off), torn: true}
		}
		line := data[off : off+nl]
		if len(line) > 0 {
			var j jsonRecord
			if err := json.Unmarshal(line, &j); err != nil {
				if off+nl+1 >= len(data) {
					return segmentDecode{recs: recs, good: int64(off), torn: true}
				}
				return segmentDecode{recs: recs, good: int64(off),
					err: fmt.Errorf("wal: corrupt JSON record %d: %w", len(recs)+1, err)}
			}
			rec, err := decodeJSONRecord(j)
			if err != nil {
				return segmentDecode{recs: recs, good: int64(off),
					err: fmt.Errorf("wal: JSON record %d: %w", len(recs)+1, err)}
			}
			recs = append(recs, rec)
		}
		off += nl + 1
	}
	return segmentDecode{recs: recs, good: int64(off)}
}

// decodeSegmentFile reads and decodes one segment.
func decodeSegmentFile(fsys FS, seg SegmentInfo) segmentDecode {
	data, err := fsys.ReadFile(seg.Path)
	if err != nil {
		return segmentDecode{err: err}
	}
	if seg.JSON {
		return decodeJSONSegment(data)
	}
	return decodeSegmentBytes(data)
}

// writeSnapshotSegment writes a snapshot-flagged segment holding the minimal
// record sequence that recreates cat (one create per table, its indexes, one
// insert per live row), through a temp file, fsync and rename. It returns
// the final file size.
func writeSnapshotSegment(fsys FS, dir string, seq uint64, cat *storage.Catalog) (int64, error) {
	tmp := filepath.Join(dir, segName(seq)+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	defer fsys.Remove(tmp) // no-op after the rename succeeds
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.Write(segHeader(flagSnapshot)); err != nil {
		f.Close()
		return 0, err
	}
	var buf []byte
	emit := func(r storage.LogRecord) error {
		var err error
		buf, err = appendFramedRecord(buf[:0], r)
		if err != nil {
			return err
		}
		_, err = w.Write(buf)
		return err
	}
	if err := snapshotRecords(cat, emit); err != nil {
		f.Close()
		return 0, err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, segName(seq))); err != nil {
		return 0, err
	}
	return size, fsys.SyncDir(dir)
}

// snapshotRecords feeds emit the canonical snapshot record sequence for cat.
func snapshotRecords(cat *storage.Catalog, emit func(storage.LogRecord) error) error {
	for _, name := range cat.Names() {
		tbl, err := cat.Get(name)
		if err != nil {
			return fmt.Errorf("wal: snapshot: %w", err)
		}
		if err := emit(storage.LogRecord{
			Op: storage.OpCreateTable, Table: tbl.Name(),
			Schema: tbl.Schema(), PK: tbl.PrimaryKey(),
		}); err != nil {
			return err
		}
		for _, ix := range tbl.IndexMeta() {
			op := storage.OpCreateIndex
			if ix.Ordered {
				op = storage.OpCreateOrderedIndex
			}
			if err := emit(storage.LogRecord{Op: op, Table: tbl.Name(), Cols: ix.Cols, Index: ix.Name}); err != nil {
				return err
			}
		}
		// StreamAt keeps O(1) tuples materialized while walking a spilled
		// table — essential when the scratch catalog runs with a bounded
		// pool — and the scratch is quiescent, its only consistency
		// requirement.
		var scanErr error
		tbl.StreamAt(storage.Latest(), func(id storage.RowID, row value.Tuple) bool {
			scanErr = emit(storage.LogRecord{Op: storage.OpInsert, Table: tbl.Name(), RowID: id, Row: row})
			return scanErr == nil
		})
		if scanErr != nil {
			return scanErr
		}
	}
	// Preserve the MVCC commit clock across compaction: replaying the
	// snapshot alone would restart the clock near the row count.
	return emit(storage.LogRecord{Op: storage.OpCommit, TS: cat.Clock()})
}
