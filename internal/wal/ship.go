package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/storage"
)

// This file is the log-shipping surface of the segmented WAL: everything the
// replication layer (internal/repl) needs to stream a primary's chain to a
// follower and to ingest that stream on the follower side.
//
// Shipping is physical: the follower stores byte-identical copies of the
// primary's segment files, so the primary's torn-tail recovery, snapshot
// pruning and handshake logic all apply unchanged to a follower's local
// chain. A follower resumes by presenting its chain end (TailInfo) and the
// primary answers with either "resume here" or "reset" — reset meaning the
// follower's position was compacted away (or diverged) and the whole current
// chain, starting at its leading snapshot segment, is re-shipped.

// Position addresses a byte in the log: a segment sequence number and an
// offset within that segment's file (header included).
type Position struct {
	Seq uint64
	Off int64
}

// Less orders positions by (segment, offset).
func (p Position) Less(q Position) bool {
	if p.Seq != q.Seq {
		return p.Seq < q.Seq
	}
	return p.Off < q.Off
}

// ErrWaitStopped reports that WaitSegment was aborted via its stop channel.
var ErrWaitStopped = errors.New("wal: wait stopped")

// Pin is a retention handle: while held, compaction will not absorb (and so
// never deletes or rewrites) any segment with sequence >= the pinned value.
// Each connected follower holds one, advanced as it acknowledges.
type Pin struct {
	l        *Log
	seq      uint64
	released bool
}

func (l *Log) retainLocked(seq uint64) *Pin {
	p := &Pin{l: l, seq: seq}
	l.pins = append(l.pins, p)
	return p
}

// Update advances the pin to seq; retention never moves backwards.
func (p *Pin) Update(seq uint64) {
	p.l.mu.Lock()
	if !p.released && seq > p.seq {
		p.seq = seq
	}
	p.l.maybeAutoCompactLocked()
	p.l.mu.Unlock()
}

// Release drops the pin, letting compaction reclaim the segments it covered.
func (p *Pin) Release() {
	p.l.mu.Lock()
	if !p.released {
		p.released = true
		pins := p.l.pins[:0]
		for _, q := range p.l.pins {
			if q != p {
				pins = append(pins, q)
			}
		}
		p.l.pins = pins
		p.l.maybeAutoCompactLocked()
	}
	p.l.mu.Unlock()
}

func (l *Log) minPinLocked() uint64 {
	m := ^uint64(0)
	for _, p := range l.pins {
		if p.seq < m {
			m = p.seq
		}
	}
	return m
}

// compactableLocked returns the sealed prefix compaction may absorb: only
// segments below every retention pin, and never a lone snapshot (absorbing
// it would rewrite the same sequence number with reordered bytes, breaking
// byte identity with followers that already copied it, for zero gain).
func (l *Log) compactableLocked() []SegmentInfo {
	limit := l.minPinLocked()
	var segs []SegmentInfo
	for _, s := range l.sealed {
		if s.Seq >= limit {
			break
		}
		segs = append(segs, s)
	}
	if len(segs) == 1 && segs[0].Snapshot {
		return nil
	}
	return segs
}

// bumpWatchLocked wakes every WaitSegment waiter. Called with mu held after
// any change to the shippable extent (size growth, seal, close, error).
func (l *Log) bumpWatchLocked() {
	if l.watch != nil {
		close(l.watch)
		l.watch = make(chan struct{})
	}
}

// End returns the current end of the log — the position just past the last
// written byte of the active (or, mid-ingest-gap, last sealed) segment.
func (l *Log) End() Position {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Position{Seq: l.seq, Off: l.size}
}

// TailInfo returns the follower's resume position (its chain end) and
// whether the segment that position points into is a snapshot segment — the
// pair a follower presents when handshaking with a primary.
func (l *Log) TailInfo() (Position, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		if n := len(l.sealed); n > 0 {
			s := l.sealed[n-1]
			return Position{Seq: s.Seq, Off: s.Bytes}, s.Snapshot
		}
		return Position{}, false
	}
	return Position{Seq: l.seq, Off: l.size}, l.ingestSnap
}

// SegmentStatus reports the shippable extent of segment seq: its current
// size, flags, and whether it (still) exists in the chain.
func (l *Log) SegmentStatus(seq uint64) (SegmentInfo, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segmentStatusLocked(seq)
}

func (l *Log) segmentStatusLocked(seq uint64) (SegmentInfo, bool) {
	if l.f != nil && seq == l.seq {
		path := filepath.Join(l.dir, segName(seq))
		if l.ingestTmp != "" {
			path = l.ingestTmp
		}
		return SegmentInfo{Seq: seq, Path: path, Bytes: l.size, Snapshot: l.ingestSnap}, true
	}
	for _, s := range l.sealed {
		if s.Seq == seq {
			return s, true
		}
	}
	return SegmentInfo{}, false
}

// WaitSegment blocks until segment seq has bytes past off, is sealed, or is
// gone from the chain — i.e. until a shipper parked at (seq, off) has
// something to do. stop aborts the wait with ErrWaitStopped.
func (l *Log) WaitSegment(seq uint64, off int64, stop <-chan struct{}) error {
	l.mu.Lock()
	for {
		if l.err != nil {
			err := l.err
			l.mu.Unlock()
			return err
		}
		if l.closed {
			l.mu.Unlock()
			return ErrLogClosed
		}
		s, ok := l.segmentStatusLocked(seq)
		if !ok || s.Sealed || s.Bytes > off {
			l.mu.Unlock()
			return nil
		}
		ch := l.watch
		l.mu.Unlock()
		select {
		case <-ch:
		case <-stop:
			return ErrWaitStopped
		}
		l.mu.Lock()
	}
}

// ShipHandshake resolves a follower's resume position against the current
// chain. It returns the chain suffix to ship (the whole chain on reset), a
// retention pin covering it, and whether the follower must discard its state
// first. Reset triggers when the follower's segment was compacted away, when
// compaction replaced the bytes at that sequence (snapshot-flag mismatch or
// an offset past our copy), or when the follower is ahead of us. The pin is
// taken under the same lock that inspects the chain, so compaction cannot
// invalidate the plan before shipping starts.
func (l *Log) ShipHandshake(pos Position, tailSnapshot bool) (segs []SegmentInfo, pin *Pin, reset bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, nil, false, ErrLogClosed
	}
	if l.err != nil {
		return nil, nil, false, l.err
	}
	chain := append([]SegmentInfo(nil), l.sealed...)
	chain = append(chain, SegmentInfo{
		Seq: l.seq, Path: filepath.Join(l.dir, segName(l.seq)), Bytes: l.size,
	})
	for _, s := range chain {
		if s.JSON {
			return nil, nil, false, fmt.Errorf("wal: cannot ship legacy JSON segment %s; compact first", filepath.Base(s.Path))
		}
	}
	reset = true
	start := 0
	for i, s := range chain {
		if s.Seq != pos.Seq {
			continue
		}
		if s.Snapshot == tailSnapshot && pos.Off >= segHeaderLen && pos.Off <= s.Bytes {
			reset, start = false, i
		}
		break
	}
	if reset {
		start = 0
	}
	segs = chain[start:]
	pin = l.retainLocked(segs[0].Seq)
	return segs, pin, reset, nil
}

// FS returns the filesystem the log runs on (shippers read segment bytes
// through it so fault injection covers the read path too).
func (l *Log) FS() FS { return l.fs }

// CutFrames returns the length of the longest whole-frame prefix of data and
// the number of record frames in it. atStart marks data as beginning at
// segment offset 0, where the 8-byte segment header precedes the first frame.
// Shippers cut every chunk this way, so what goes over the wire — and onto
// the follower's disk — always ends at a frame boundary.
func CutFrames(data []byte, atStart bool) (n int, records int) {
	off := 0
	if atStart {
		if len(data) < segHeaderLen {
			return 0, 0
		}
		off = segHeaderLen
	}
	for {
		if len(data)-off < 8 {
			return off, records
		}
		ln := int(binary.LittleEndian.Uint32(data[off:]))
		if ln <= 0 || ln > maxRecordLen || len(data)-off-8 < ln {
			return off, records
		}
		off += 8 + ln
		records++
	}
}

// DecodeShipped decodes a shipped chunk of whole frames into records,
// stripping and validating the segment header when the chunk starts the
// segment. Shippers only send whole frames, so a chunk that does not decode
// exactly is a protocol violation, not a torn tail.
func DecodeShipped(data []byte, atStart bool) ([]storage.LogRecord, error) {
	if atStart {
		if len(data) < segHeaderLen {
			return nil, fmt.Errorf("wal: shipped chunk shorter than the segment header")
		}
		if _, err := parseSegHeader(data); err != nil {
			return nil, err
		}
		data = data[segHeaderLen:]
	}
	recs, good, torn, err := decodeRecords(data)
	if err != nil {
		return nil, err
	}
	if torn || good != len(data) {
		return nil, fmt.Errorf("wal: shipped chunk not frame-aligned (%d of %d bytes decoded)", good, len(data))
	}
	return recs, nil
}

// IngestReset discards the entire chain — every segment file, staging file,
// and the active tail — leaving the log empty and ready to receive a full
// re-ship. The follower's catalog must be reset alongside (Applier.Reset).
func (l *Log) IngestReset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	if l.f != nil {
		l.f.Close() //nolint:errcheck // contents are being discarded
		l.f = nil
	}
	ents, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		_, _, seg := parseSegName(name)
		if !seg && !strings.HasSuffix(name, ".tmp") {
			continue
		}
		if err := l.fs.Remove(filepath.Join(l.dir, name)); err != nil {
			return err
		}
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return err
	}
	l.sealed = nil
	l.seq, l.size = 0, 0
	l.ingestTmp, l.ingestSnap = "", false
	l.err = nil // the old chain's sticky error dies with the old chain
	l.bumpWatchLocked()
	return nil
}

// IngestOpen starts receiving segment seq as the new tail. Snapshot segments
// are staged under a temp name and published by IngestSeal's rename, so a
// crash mid-transfer can never leave a torn snapshot at a real segment path
// (recovery replays a snapshot in place of everything older, so it must only
// ever see complete ones).
func (l *Log) IngestOpen(seq uint64, snapshot bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	if l.f != nil {
		return fmt.Errorf("wal: ingest open %d: segment %d still active", seq, l.seq)
	}
	if n := len(l.sealed); n > 0 && seq <= l.sealed[n-1].Seq {
		return fmt.Errorf("wal: ingest open %d: not past the sealed chain (last %d)", seq, l.sealed[n-1].Seq)
	}
	path := filepath.Join(l.dir, segName(seq))
	tmp := ""
	if snapshot {
		tmp = path + ".tmp"
		path = tmp
	}
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	l.f, l.seq, l.size = f, seq, 0
	l.ingestTmp, l.ingestSnap = tmp, snapshot
	l.bumpWatchLocked()
	return nil
}

// IngestWrite appends shipped bytes at off, which must equal the current
// segment size (the shipper and follower track the same stream position).
// The caller only hands over whole decoded frames, so the on-disk tail
// always ends at a frame boundary and a reconnect can resume byte-exactly.
func (l *Log) IngestWrite(off int64, data []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrLogClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	f := l.f
	if f == nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: ingest write: no active segment")
	}
	if off != l.size {
		l.mu.Unlock()
		return fmt.Errorf("wal: ingest write at offset %d, segment is at %d", off, l.size)
	}
	l.mu.Unlock()
	// WriteAt (plus repositioning for any post-promotion appends) keeps a
	// retried chunk self-healing after an injected short write.
	_, werr := f.WriteAt(data, off)
	if werr == nil {
		_, werr = f.Seek(off+int64(len(data)), 0)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if werr != nil {
		if l.err == nil {
			l.err = werr
		}
		return werr
	}
	l.size = off + int64(len(data))
	l.bumpWatchLocked()
	return nil
}

// IngestSeal makes the active ingested segment durable and seals it,
// renaming a staged snapshot into place. The log is left with no active
// segment until the next IngestOpen. Sealing when nothing is active is a
// no-op (a reconnecting shipper may re-announce a seal the follower already
// performed).
func (l *Log) IngestSeal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	path := filepath.Join(l.dir, segName(l.seq))
	if err == nil && l.ingestTmp != "" {
		err = l.fs.Rename(l.ingestTmp, path)
	}
	if err == nil {
		err = l.fs.SyncDir(l.dir)
	}
	if err != nil {
		if l.err == nil {
			l.err = err
		}
		return err
	}
	l.sealed = append(l.sealed, SegmentInfo{
		Seq: l.seq, Path: path, Bytes: l.size, Sealed: true, Snapshot: l.ingestSnap,
	})
	l.f = nil
	l.ingestTmp, l.ingestSnap = "", false
	l.stats.Rotations++
	l.bumpWatchLocked()
	return nil
}

// EnsureActive guarantees an open, appendable active segment. Promotion
// calls it: a follower stopped between IngestSeal and IngestOpen has no tail
// to append to. It refuses while a snapshot transfer is staged — promoting
// mid-reset would seal a half-copied database.
func (l *Log) EnsureActive() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	if l.err != nil {
		return l.err
	}
	if l.f != nil {
		if l.ingestTmp != "" {
			return fmt.Errorf("wal: snapshot transfer incomplete; cannot promote")
		}
		return nil
	}
	next := uint64(1)
	if n := len(l.sealed); n > 0 {
		next = l.sealed[n-1].Seq + 1
	}
	return l.createSegment(next)
}
