// Package wal gives the storage engine durability: a write-ahead log of
// every applied mutation, replayed on startup to reconstruct the database.
//
// The current on-disk format (v2, see Log in log.go) is a directory of
// binary segments — length-prefixed, CRC32C-checksummed records, size-based
// rotation, group-committed fsyncs, background compaction of sealed
// segments, and parallel torn-tail-tolerant recovery.
//
// This file keeps the ORIGINAL v1 format readable and writable: JSON lines
// in a single file (stdlib-only, human-inspectable). OpenLog migrates a v1
// file in place by adopting it as segment 1; the WAL/Recover/Compact API
// below remains for that migration path and for tooling that wants the
// legacy format.
//
// Both formats are *physical-redo* style: every mutation is appended in
// apply order, and rolled-back transactions appear as their operations
// followed by the undo machinery's compensating operations, so a full
// replay always converges to the exact pre-crash logical state.
// Coordination state (the pending-query tables) is deliberately volatile,
// like the demo system: pending entangled queries belong to live sessions;
// installed answers live in ordinary tables and are durable.
package wal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/storage"
	"repro/internal/value"
)

// jsonValue is the tagged wire form of a value.Value.
type jsonValue struct {
	T string  `json:"t"` // n,i,f,s,b
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
	B bool    `json:"b,omitempty"`
}

func encodeValue(v value.Value) jsonValue {
	switch v.Type() {
	case value.TypeInt:
		return jsonValue{T: "i", I: v.Int()}
	case value.TypeFloat:
		return jsonValue{T: "f", F: v.Float()}
	case value.TypeString:
		return jsonValue{T: "s", S: v.Str()}
	case value.TypeBool:
		return jsonValue{T: "b", B: v.Bool()}
	default:
		return jsonValue{T: "n"}
	}
}

func decodeValue(j jsonValue) (value.Value, error) {
	switch j.T {
	case "i":
		return value.NewInt(j.I), nil
	case "f":
		return value.NewFloat(j.F), nil
	case "s":
		return value.NewString(j.S), nil
	case "b":
		return value.NewBool(j.B), nil
	case "n":
		return value.Null, nil
	default:
		return value.Null, fmt.Errorf("wal: unknown value tag %q", j.T)
	}
}

// jsonRecord is the wire form of a storage.LogRecord.
type jsonRecord struct {
	Op    string      `json:"op"`
	Table string      `json:"table"`
	Cols  []colDef    `json:"schema,omitempty"` // create
	PK    []string    `json:"pk,omitempty"`
	IxCol []string    `json:"cols,omitempty"` // index
	Index string      `json:"ix,omitempty"`   // index: user-assigned name
	RowID uint64      `json:"rid,omitempty"`
	Row   []jsonValue `json:"row,omitempty"`
	TS    uint64      `json:"ts,omitempty"`  // commit
	Txn   uint64      `json:"txn,omitempty"` // transaction tag (0 = auto-commit)
}

type colDef struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

func encodeRecord(r storage.LogRecord) jsonRecord {
	j := jsonRecord{Op: string(r.Op), Table: r.Table, PK: r.PK, IxCol: r.Cols, Index: r.Index, RowID: uint64(r.RowID), TS: r.TS, Txn: r.Txn}
	if r.Schema != nil {
		for _, c := range r.Schema.Columns {
			j.Cols = append(j.Cols, colDef{Name: c.Name, Type: c.Type.String()})
		}
	}
	for _, v := range r.Row {
		j.Row = append(j.Row, encodeValue(v))
	}
	return j
}

// WAL is an append-only mutation log.
type WAL struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	err error // sticky write error, surfaced by Err and Close
}

// Open opens (creating if needed) the log at path for appending.
func Open(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &WAL{f: f, w: bufio.NewWriter(f)}, nil
}

// Append writes one record. Errors are sticky: the first failure is kept and
// every later Append is a no-op returning it (the caller decides whether to
// fail stop; storage hooks cannot return errors mid-mutation).
func (w *WAL) Append(r storage.LogRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	data, err := json.Marshal(encodeRecord(r))
	if err != nil {
		w.err = err
		return err
	}
	data = append(data, '\n')
	if _, err := w.w.Write(data); err != nil {
		w.err = err
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Sync flushes and fsyncs the log.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	return w.f.Sync()
}

// Err returns the sticky write error, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	flushErr := w.w.Flush()
	closeErr := w.f.Close()
	if w.err != nil {
		return w.err
	}
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Recover replays the log at path into the catalog, returning the number of
// records applied. A missing file is not an error (fresh database). A
// truncated final line (torn write at crash) is tolerated and ignored; any
// other malformed record fails recovery.
func Recover(path string, cat *storage.Catalog) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	applied := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var j jsonRecord
		if err := json.Unmarshal(line, &j); err != nil {
			// A torn final record is expected after a crash; anything
			// mid-file is corruption.
			if isLastLine(sc) {
				break
			}
			return applied, fmt.Errorf("wal: corrupt record %d: %w", applied+1, err)
		}
		rec, err := decodeJSONRecord(j)
		if err != nil {
			return applied, fmt.Errorf("wal: record %d: %w", applied+1, err)
		}
		if err := applyRecord(cat, rec); err != nil {
			return applied, fmt.Errorf("wal: replay record %d (%s %s): %w", applied+1, j.Op, j.Table, err)
		}
		applied++
	}
	if err := sc.Err(); err != nil {
		return applied, err
	}
	return applied, nil
}

// isLastLine reports whether the scanner has no further tokens. It consumes
// lookahead, which is fine because the caller stops on torn records.
func isLastLine(sc *bufio.Scanner) bool { return !sc.Scan() }

// decodeJSONRecord converts the JSON wire form back into a storage.LogRecord
// so both log formats replay through the same applyRecord.
func decodeJSONRecord(j jsonRecord) (storage.LogRecord, error) {
	rec := storage.LogRecord{
		Op: storage.LogOp(j.Op), Table: j.Table,
		PK: j.PK, Cols: j.IxCol, Index: j.Index, RowID: storage.RowID(j.RowID), TS: j.TS, Txn: j.Txn,
	}
	switch rec.Op {
	case storage.OpCreateTable, storage.OpDropTable, storage.OpCreateIndex,
		storage.OpCreateOrderedIndex, storage.OpInsert, storage.OpDelete,
		storage.OpUpdate, storage.OpRestore, storage.OpCommit:
	default:
		return rec, fmt.Errorf("unknown op %q", j.Op)
	}
	if rec.Op == storage.OpCreateTable {
		schema := value.NewSchema()
		for _, c := range j.Cols {
			t, err := value.ParseType(c.Type)
			if err != nil {
				return rec, err
			}
			schema.Columns = append(schema.Columns, value.Col(c.Name, t))
		}
		rec.Schema = schema
	}
	if len(j.Row) > 0 {
		row, err := decodeRow(j.Row)
		if err != nil {
			return rec, err
		}
		rec.Row = row
	}
	return rec, nil
}

// applyRecord replays one logged mutation into the catalog. It is shared by
// JSON (legacy) and binary (segmented) recovery.
func applyRecord(cat *storage.Catalog, r storage.LogRecord) error {
	switch r.Op {
	case storage.OpCreateTable:
		_, err := cat.Create(r.Table, r.Schema, r.PK...)
		return err

	case storage.OpDropTable:
		return cat.Drop(r.Table)

	case storage.OpCreateIndex:
		tbl, err := cat.Get(r.Table)
		if err != nil {
			return err
		}
		return tbl.CreateIndexNamed(r.Index, r.Cols...)

	case storage.OpCreateOrderedIndex:
		tbl, err := cat.Get(r.Table)
		if err != nil {
			return err
		}
		if len(r.Cols) != 1 {
			return fmt.Errorf("ordered index wants exactly one column, got %v", r.Cols)
		}
		return tbl.CreateOrderedIndexNamed(r.Index, r.Cols[0])

	case storage.OpInsert, storage.OpRestore:
		tbl, err := cat.Get(r.Table)
		if err != nil {
			return err
		}
		return tbl.RestoreAt(r.RowID, r.Row)

	case storage.OpDelete:
		tbl, err := cat.Get(r.Table)
		if err != nil {
			return err
		}
		_, err = tbl.Delete(r.RowID)
		return err

	case storage.OpUpdate:
		tbl, err := cat.Get(r.Table)
		if err != nil {
			return err
		}
		_, err = tbl.Update(r.RowID, r.Row)
		return err

	case storage.OpCommit:
		// Advance the MVCC commit clock so post-recovery snapshots order
		// after every pre-crash commit. Row effects were already replayed by
		// the preceding physical records.
		cat.AdvanceClock(r.TS)
		return nil

	default:
		return fmt.Errorf("unknown op %q", r.Op)
	}
}

func decodeRow(js []jsonValue) (value.Tuple, error) {
	row := make(value.Tuple, len(js))
	for i, jv := range js {
		v, err := decodeValue(jv)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}
