package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

func tmpWAL(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "youtopia.wal")
}

func loggedCatalog(t *testing.T, path string) (*storage.Catalog, *WAL) {
	t.Helper()
	cat := storage.NewCatalog()
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cat.SetLog(func(r storage.LogRecord) { w.Append(r) }) //nolint:errcheck
	return cat, w
}

func flightsSchema() *value.Schema {
	return value.NewSchema(value.Col("fno", value.TypeInt), value.Col("dest", value.TypeString))
}

func TestRecoverMissingFile(t *testing.T) {
	cat := storage.NewCatalog()
	n, err := Recover(filepath.Join(t.TempDir(), "absent.wal"), cat)
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestLogAndRecoverRoundTrip(t *testing.T) {
	path := tmpWAL(t)
	cat, w := loggedCatalog(t, path)

	tbl, err := cat.Create("Flights", flightsSchema(), "fno")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("dest"); err != nil {
		t.Fatal(err)
	}
	id1, _ := tbl.Insert(value.NewTuple(122, "Paris"))
	id2, _ := tbl.Insert(value.NewTuple(136, "Rome"))
	tbl.Update(id2, value.NewTuple(136, "Milan")) //nolint:errcheck
	id3, _ := tbl.Insert(value.NewTuple(140, "Oslo"))
	tbl.Delete(id3) //nolint:errcheck
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover into a fresh catalog.
	cat2 := storage.NewCatalog()
	n, err := Recover(path, cat2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 { // create, index, ins, ins, upd, ins, del
		t.Errorf("applied %d records", n)
	}
	tbl2, err := cat2.Get("Flights")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 2 {
		t.Fatalf("recovered %d rows", tbl2.Len())
	}
	row, err := tbl2.Get(id1)
	if err != nil || row[1].Str() != "Paris" {
		t.Errorf("row1 = %v, %v", row, err)
	}
	row, err = tbl2.Get(id2)
	if err != nil || row[1].Str() != "Milan" {
		t.Errorf("row2 = %v, %v", row, err)
	}
	// Index recovered.
	if !tbl2.HasIndex([]int{1}) {
		t.Error("index not recovered")
	}
	// PK recovered: duplicate insert must fail.
	if _, err := tbl2.Insert(value.NewTuple(122, "Dup")); err == nil {
		t.Error("PK not recovered")
	}
	// RowID continuity: fresh inserts must not reuse ids.
	newID, err := tbl2.Insert(value.NewTuple(150, "Lima"))
	if err != nil {
		t.Fatal(err)
	}
	if newID <= id3 {
		t.Errorf("rowid %d reused (last was %d)", newID, id3)
	}
}

func TestRecoverDrop(t *testing.T) {
	path := tmpWAL(t)
	cat, w := loggedCatalog(t, path)
	cat.Create("Tmp", flightsSchema())  //nolint:errcheck
	cat.Drop("Tmp")                     //nolint:errcheck
	cat.Create("Keep", flightsSchema()) //nolint:errcheck
	w.Close()                           //nolint:errcheck
	cat2 := storage.NewCatalog()
	if _, err := Recover(path, cat2); err != nil {
		t.Fatal(err)
	}
	if cat2.Has("Tmp") || !cat2.Has("Keep") {
		t.Errorf("names = %v", cat2.Names())
	}
}

func TestTornFinalRecordTolerated(t *testing.T) {
	path := tmpWAL(t)
	cat, w := loggedCatalog(t, path)
	cat.Create("T", flightsSchema()) //nolint:errcheck
	tbl, _ := cat.Get("T")
	tbl.Insert(value.NewTuple(1, "a")) //nolint:errcheck
	w.Close()                          //nolint:errcheck

	// Simulate a crash mid-append: a torn, non-JSON tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"insert","table":"T","rid":2,"row":[{"t":"i","i"`) //nolint:errcheck
	f.Close()

	cat2 := storage.NewCatalog()
	n, err := Recover(path, cat2)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if n != 2 {
		t.Errorf("applied %d", n)
	}
	tbl2, _ := cat2.Get("T")
	if tbl2.Len() != 1 {
		t.Errorf("rows = %d", tbl2.Len())
	}
}

func TestMidFileCorruptionFailsRecovery(t *testing.T) {
	path := tmpWAL(t)
	cat, w := loggedCatalog(t, path)
	cat.Create("T", flightsSchema()) //nolint:errcheck
	w.Close()                        //nolint:errcheck

	data, _ := os.ReadFile(path)
	corrupted := "GARBAGE NOT JSON\n" + string(data)
	os.WriteFile(path, []byte(corrupted), 0o644) //nolint:errcheck

	cat2 := storage.NewCatalog()
	if _, err := Recover(path, cat2); err == nil {
		t.Error("mid-file corruption not detected")
	}
}

func TestValueTaggedRoundTrip(t *testing.T) {
	path := tmpWAL(t)
	cat, w := loggedCatalog(t, path)
	schema := value.NewSchema(
		value.Col("i", value.TypeInt), value.Col("f", value.TypeFloat),
		value.Col("s", value.TypeString), value.Col("b", value.TypeBool),
		value.Col("n", value.TypeInt),
	)
	cat.Create("V", schema) //nolint:errcheck
	tbl, _ := cat.Get("V")
	orig := value.NewTuple(7, 2.5, "x", true, nil)
	id, err := tbl.Insert(orig)
	if err != nil {
		t.Fatal(err)
	}
	w.Close() //nolint:errcheck

	cat2 := storage.NewCatalog()
	if _, err := Recover(path, cat2); err != nil {
		t.Fatal(err)
	}
	tbl2, _ := cat2.Get("V")
	row, err := tbl2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Equal(orig) {
		t.Errorf("round trip %v != %v", row, orig)
	}
}

func TestRolledBackTxnConvergesOnReplay(t *testing.T) {
	// The log records both the mutation and its compensation; replay must
	// converge to the committed state only.
	path := tmpWAL(t)
	cat, w := loggedCatalog(t, path)
	cat.Create("T", flightsSchema()) //nolint:errcheck
	tbl, _ := cat.Get("T")
	keep, _ := tbl.Insert(value.NewTuple(1, "keep"))

	// Simulate what txn.Rollback does: apply, then compensate.
	id, _ := tbl.Insert(value.NewTuple(2, "doomed"))
	tbl.Delete(id) //nolint:errcheck
	old, _ := tbl.Delete(keep)
	tbl.RestoreAt(keep, old) //nolint:errcheck
	w.Close()                //nolint:errcheck

	cat2 := storage.NewCatalog()
	if _, err := Recover(path, cat2); err != nil {
		t.Fatal(err)
	}
	tbl2, _ := cat2.Get("T")
	if tbl2.Len() != 1 {
		t.Fatalf("rows = %d", tbl2.Len())
	}
	row, _ := tbl2.Get(keep)
	if row[1].Str() != "keep" {
		t.Errorf("row = %v", row)
	}
}

func TestAppendAfterCloseSticks(t *testing.T) {
	path := tmpWAL(t)
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close() //nolint:errcheck
	if err := w.Append(storage.LogRecord{Op: storage.OpDropTable, Table: "x"}); err == nil {
		t.Error("append after close succeeded")
	}
	if w.Err() == nil {
		t.Error("sticky error not set")
	}
}

func TestRecoverUnknownOp(t *testing.T) {
	path := tmpWAL(t)
	os.WriteFile(path, []byte(`{"op":"explode","table":"T"}`+"\n{}\n"), 0o644) //nolint:errcheck
	if _, err := Recover(path, storage.NewCatalog()); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("err = %v", err)
	}
}

func TestTableIndexAccessors(t *testing.T) {
	tbl, err := storage.NewTable("T", flightsSchema(), "fno")
	if err != nil {
		t.Fatal(err)
	}
	tbl.CreateIndex("dest")        //nolint:errcheck
	tbl.CreateIndex("fno", "dest") //nolint:errcheck
	ixs := tbl.Indexes()
	if len(ixs) != 2 {
		t.Fatalf("indexes = %v", ixs)
	}
	if tbl2, _ := storage.NewTable("U", flightsSchema()); tbl2.PrimaryKey() != nil {
		t.Error("PK of keyless table should be nil")
	}
}
