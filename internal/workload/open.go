package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// RunOpen drives an open-system experiment: coordination pairs arrive as a
// Poisson process with `rate` pairs/second for `duration`; each pair's two
// queries are submitted back to back (or PartnerDelay apart). Unlike the
// closed-loop Run, arrival pressure does not adapt to completion speed, so
// queueing effects show: latency rises as the rate approaches the
// coordinator's service capacity. This is the loaded-system demonstration
// (§3) in its steady-state form.
func RunOpen(sys *core.System, cfg Config, rate float64, duration time.Duration) (Result, error) {
	return RunOpenTarget(NewLocalTarget(sys), cfg, rate, duration)
}

// RunOpenTarget is RunOpen over any workload target — in-process or a
// remote server connection (loadgen -net), where each arrival's two
// submissions and outcomes all cross the wire.
func RunOpenTarget(tgt Target, cfg Config, rate float64, duration time.Duration) (Result, error) {
	if rate <= 0 {
		return Result{}, fmt.Errorf("workload: RunOpen needs rate > 0")
	}
	cfg = cfg.withDefaults()
	g := NewGenerator(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	for i := 0; i < cfg.Loners; i++ {
		if _, err := submit(tgt, g.LonerReq(i), "loadgen"); err != nil {
			return Result{}, err
		}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		readLats  []time.Duration
		answered  int
		submitted int
		reads     int
		readErrs  int
		firstErr  error
	)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(duration)
	pair := 0
	nread := 0
	for time.Now().Before(deadline) {
		// Exponential inter-arrival for a Poisson process.
		wait := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if wait > 0 {
			time.Sleep(wait)
		}
		if !time.Now().Before(deadline) {
			break
		}
		// A ReadFraction-weighted coin decides the arrival's species: a plain
		// snapshot point read, or a coordination pair. Reads are timed
		// separately — they never coordinate, so folding them into the
		// entangled percentiles would just dilute both signals.
		if cfg.ReadFraction > 0 && rng.Float64() < cfg.ReadFraction {
			q := g.ReadQuery(nread)
			nread++
			mu.Lock()
			reads++
			mu.Unlock()
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				t0 := time.Now()
				err := tgt.Read(q)
				mu.Lock()
				if err != nil {
					readErrs++
				} else {
					readLats = append(readLats, time.Since(t0))
				}
				mu.Unlock()
			}(q)
			continue
		}
		a, b := g.PairReqs(pair + 1_000_000) // offset to avoid Run collisions
		pair++
		mu.Lock()
		submitted += 2
		mu.Unlock()
		wg.Add(1)
		go func(a, b Req) {
			defer wg.Done()
			t0 := time.Now()
			aw1, err := submit(tgt, a, "open")
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			if cfg.PartnerDelay > 0 {
				time.Sleep(cfg.PartnerDelay)
			}
			aw2, err := submit(tgt, b, "open")
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			done := make(chan struct{})
			timer := time.AfterFunc(30*time.Second, func() { close(done) })
			defer timer.Stop()
			for _, aw := range []Await{aw1, aw2} {
				if !aw(done) {
					return
				}
				mu.Lock()
				answered++
				latencies = append(latencies, time.Since(t0))
				mu.Unlock()
			}
		}(a, b)
	}
	wg.Wait()
	return Result{
		Submitted:   submitted + cfg.Loners,
		Answered:    answered,
		Unanswered:  submitted - answered,
		Duration:    time.Since(start),
		Latencies:   latencies,
		Reads:       reads,
		ReadErrors:  readErrs,
		ReadLats:    readLats,
		Coordinator: tgt.Stats(),
	}, nil
}

// PctLatency returns the p-th percentile entangled latency (p in (0,100]).
func (r Result) PctLatency(p float64) time.Duration {
	return pctOf(r.Latencies, p)
}

// PctReadLatency returns the p-th percentile snapshot-read latency.
func (r Result) PctReadLatency(p float64) time.Duration {
	return pctOf(r.ReadLats, p)
}

func pctOf(ls []time.Duration, p float64) time.Duration {
	if len(ls) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
