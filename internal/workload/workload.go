// Package workload generates and drives the coordination workloads of the
// demonstration outline (§3): pairs, groups, flight+hotel trips, ad-hoc
// overlap graphs, and the "loaded system, where a large number of entangled
// queries are trying to coordinate simultaneously" used to demonstrate
// scalability. The benchmarks in the repository root regenerate every
// experiment through this package.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/travel"
)

// Config parameterizes a generated workload.
type Config struct {
	// Pairs is the number of two-person coordinations to generate.
	Pairs int
	// GroupSize and Groups generate group coordinations (§3.1 "Group flight
	// booking"); each group member constrains every other member.
	GroupSize int
	Groups    int
	// Trip adds hotel coordination to every request (two answer atoms).
	Trip bool
	// Loners is the number of never-matching queries pre-loaded as pending
	// noise: their partners never arrive, so they sit in the pending tables
	// and tax every later coordination round.
	Loners int
	// Concurrency bounds concurrent submitters in Run (default 8).
	Concurrency int
	// PartnerDelay staggers pair arrivals: the second query of each pair is
	// submitted this long after the first, exercising the park→retry path
	// instead of the immediate-match path.
	PartnerDelay time.Duration
	// Footprints spreads pair and loner workloads across this many disjoint
	// answer relations (Reservation0..ReservationN-1) instead of the single
	// shared Reservation. Disjoint footprints route to independent
	// coordination lanes of a sharded coordinator, so concurrent pairs
	// match in parallel. Zero or one keeps the classic single relation.
	Footprints int
	// Seed drives destination/price jitter.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Concurrency == 0 {
		c.Concurrency = 8
	}
	if c.GroupSize == 0 {
		c.GroupSize = 4
	}
	return c
}

// Generator produces entangled-query SQL for synthetic participants.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator builds a generator.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// dest rotates destinations so load spreads across candidate sets.
func (g *Generator) dest(i int) string {
	return travel.Destinations[i%len(travel.Destinations)]
}

// rel returns the answer relation of workload item i: the shared Reservation
// classically, or one of Footprints disjoint relations when footprint
// spreading is on.
func (g *Generator) rel(i int) string {
	if g.cfg.Footprints <= 1 {
		return travel.RelFlight
	}
	return fmt.Sprintf("Reservation%d", i%g.cfg.Footprints)
}

// PairQueries returns the two symmetric queries of pair i.
func (g *Generator) PairQueries(i int) (string, string) {
	a := fmt.Sprintf("p%d_a", i)
	b := fmt.Sprintf("p%d_b", i)
	f := travel.FlightFilter{Dest: g.dest(i)}
	if g.cfg.Trip {
		h := travel.HotelFilter{City: g.dest(i)}
		return travel.BuildTripQuery(a, []string{b}, f, h), travel.BuildTripQuery(b, []string{a}, f, h)
	}
	rel := g.rel(i)
	return travel.BuildFlightQueryInto(rel, a, []string{b}, f), travel.BuildFlightQueryInto(rel, b, []string{a}, f)
}

// GroupQueries returns the GroupSize mutually-constraining queries of group i.
func (g *Generator) GroupQueries(i int) []string {
	names := make([]string, g.cfg.GroupSize)
	for j := range names {
		names[j] = fmt.Sprintf("g%d_m%d", i, j)
	}
	f := travel.FlightFilter{Dest: g.dest(i)}
	out := make([]string, len(names))
	for j, self := range names {
		var friends []string
		for k, o := range names {
			if k != j {
				friends = append(friends, o)
			}
		}
		if g.cfg.Trip {
			out[j] = travel.BuildTripQuery(self, friends, f, travel.HotelFilter{City: g.dest(i)})
		} else {
			out[j] = travel.BuildFlightQuery(self, friends, f)
		}
	}
	return out
}

// LonerQuery returns a query whose partner never arrives.
func (g *Generator) LonerQuery(i int) string {
	self := fmt.Sprintf("loner%d", i)
	ghost := fmt.Sprintf("ghost%d", i)
	return travel.BuildFlightQueryInto(g.rel(i), self, []string{ghost}, travel.FlightFilter{Dest: g.dest(i)})
}

// Result aggregates a workload run.
type Result struct {
	Submitted   int
	Answered    int
	Unanswered  int
	Duration    time.Duration
	Latencies   []time.Duration // per answered query, submit→answer
	Coordinator coord.StatsSnapshot
}

// Throughput returns answered queries per second.
func (r Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Answered) / r.Duration.Seconds()
}

// AvgLatency returns the mean submit→answer latency.
func (r Result) AvgLatency() time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range r.Latencies {
		sum += l
	}
	return sum / time.Duration(len(r.Latencies))
}

// MaxLatency returns the worst submit→answer latency.
func (r Result) MaxLatency() time.Duration {
	var max time.Duration
	for _, l := range r.Latencies {
		if l > max {
			max = l
		}
	}
	return max
}

// String renders a one-line summary (used by cmd/loadgen).
func (r Result) String() string {
	return fmt.Sprintf("submitted=%d answered=%d unanswered=%d dur=%s thpt=%.0f/s avg=%s max=%s",
		r.Submitted, r.Answered, r.Unanswered, r.Duration.Round(time.Millisecond),
		r.Throughput(), r.AvgLatency().Round(time.Microsecond), r.MaxLatency().Round(time.Microsecond))
}

// NewSystem builds a Youtopia instance seeded with the travel catalog sized
// for workload runs. The coordinator gets the default GOMAXPROCS lanes.
func NewSystem(seed int64) (*core.System, error) {
	return NewSystemShards(seed, 0)
}

// NewSystemShards is NewSystem with an explicit coordination-lane count
// (0 = GOMAXPROCS, 1 = the unsharded A7 ablation).
func NewSystemShards(seed int64, shards int) (*core.System, error) {
	return NewSystemConfig(seed, core.Config{CoordShards: shards})
}

// NewSystemConfig is NewSystem over an arbitrary core.Config (WAL settings,
// lane count, ...); the matcher knobs and the travel seed are applied on
// top. loadgen's -durable mode uses this to measure committed-arrival
// throughput.
func NewSystemConfig(seed int64, cfg core.Config) (*core.System, error) {
	cfg.Coord = coord.Options{
		UseIndex: true, GroundSmallestFirst: true, Seed: seed,
		Shards: cfg.Coord.Shards,
	}
	sys := core.NewSystem(cfg)
	if err := sys.Err(); err != nil {
		return nil, err
	}
	// Disable auto-retry noise during bulk loading benchmarks: matches occur
	// on arrival anyway. Loaded-system runs re-enable retry explicitly.
	if err := travel.Seed(sys, travel.SeedConfig{Seed: seed}); err != nil {
		return nil, err
	}
	return sys, nil
}

// Run drives the configured workload against a system: first Loners, then
// all pairs and groups with Concurrency submitters, waiting for every
// non-loner to be answered. It returns aggregate metrics.
func Run(sys *core.System, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	g := NewGenerator(cfg)

	for i := 0; i < cfg.Loners; i++ {
		if _, err := sys.Submit(g.LonerQuery(i), "loadgen"); err != nil {
			return Result{}, fmt.Errorf("loner %d: %w", i, err)
		}
	}

	type job struct{ queries []string }
	var jobs []job
	for i := 0; i < cfg.Pairs; i++ {
		a, b := g.PairQueries(i)
		jobs = append(jobs, job{queries: []string{a, b}})
	}
	for i := 0; i < cfg.Groups; i++ {
		jobs = append(jobs, job{queries: g.GroupQueries(i)})
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		answered  int
		firstErr  error
	)
	start := time.Now()
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			handles := make([]*coord.Handle, 0, len(j.queries))
			t0 := time.Now()
			for qi, q := range j.queries {
				if qi > 0 && cfg.PartnerDelay > 0 {
					time.Sleep(cfg.PartnerDelay)
				}
				h, err := sys.Submit(q, "loadgen")
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				handles = append(handles, h)
			}
			timeout := time.After(30 * time.Second)
			done := make(chan struct{})
			go func() { <-timeout; close(done) }()
			for _, h := range handles {
				if _, ok := h.Wait(done); !ok {
					return // unanswered within deadline
				}
				mu.Lock()
				answered++
				latencies = append(latencies, time.Since(t0))
				mu.Unlock()
			}
		}(j)
	}
	wg.Wait()
	dur := time.Since(start)
	if firstErr != nil {
		return Result{}, firstErr
	}
	submitted := cfg.Loners
	for _, j := range jobs {
		submitted += len(j.queries)
	}
	return Result{
		Submitted:   submitted,
		Answered:    answered,
		Unanswered:  submitted - answered - cfg.Loners,
		Duration:    dur,
		Latencies:   latencies,
		Coordinator: sys.Coordinator().Stats(),
	}, nil
}

// AdHocChain submits a chain of n queries q1..qn where qi coordinates with
// q(i+1) on flights (and the last with the first via hotels when trip), an
// "arbitrary groups ... in flexible ways" stressor. Returns the sources.
func AdHocChain(n int, dest string) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("chain%d", i)
	}
	out := make([]string, n)
	for i, self := range names {
		next := names[(i+1)%n]
		out[i] = travel.BuildFlightQuery(self, []string{next}, travel.FlightFilter{Dest: dest})
	}
	return out
}

// JoinSources is a helper for printing generated workloads.
func JoinSources(srcs []string) string { return strings.Join(srcs, ";\n") }
