// Package workload generates and drives the coordination workloads of the
// demonstration outline (§3): pairs, groups, flight+hotel trips, ad-hoc
// overlap graphs, and the "loaded system, where a large number of entangled
// queries are trying to coordinate simultaneously" used to demonstrate
// scalability. The benchmarks in the repository root regenerate every
// experiment through this package.
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/travel"
	"repro/internal/value"
)

// Target abstracts where a workload submits its queries: an in-process
// System, or a real server over TCP (so wire overhead shows up in the
// measured latencies). Submit registers one entangled query and returns an
// Await for its outcome.
type Target interface {
	Submit(sql, owner string) (Await, error)
	// SubmitPrepared registers one entangled query through the prepared
	// pipeline: tmpl is parsed/compiled at most once per target (in-process
	// via the system's statement cache, over the wire via a per-connection
	// statement table) and params is bound per submission — arrivals skip
	// sql.Parse and eq compilation, and over the wire the SQL text stops
	// shipping at all.
	SubmitPrepared(tmpl string, params value.Tuple, owner string) (Await, error)
	// Read executes one plain (non-entangled) SQL query and discards its
	// rows. Under MVCC these run against a snapshot and never block on the
	// coordination writers, so a read-mixed workload (Config.ReadFraction)
	// measures reader latency while entangled matches commit underneath.
	Read(sql string) error
	// Stats snapshots the coordinator counters after a run (over the wire,
	// via the typed admin API, for remote targets).
	Stats() coord.StatsSnapshot
}

// Req is one workload submission: entangled SQL text, or (with Params set) a
// prepared template plus its parameter vector.
type Req struct {
	SQL    string
	Params value.Tuple // nil = text submission
}

// submit routes a Req to the matching Target method.
func submit(tgt Target, q Req, owner string) (Await, error) {
	if q.Params == nil {
		return tgt.Submit(q.SQL, owner)
	}
	return tgt.SubmitPrepared(q.SQL, q.Params, owner)
}

// Await blocks until the query's coordination outcome arrives or done is
// closed, reporting whether the outcome arrived.
type Await func(done <-chan struct{}) bool

// localTarget submits straight into an in-process System.
type localTarget struct{ sys *core.System }

// NewLocalTarget wraps an in-process System as a workload target.
func NewLocalTarget(sys *core.System) Target { return localTarget{sys} }

func (t localTarget) Submit(sql, owner string) (Await, error) {
	h, err := t.sys.Submit(sql, owner)
	if err != nil {
		return nil, err
	}
	return func(done <-chan struct{}) bool {
		_, ok := h.Wait(done)
		return ok
	}, nil
}

func (t localTarget) SubmitPrepared(tmpl string, params value.Tuple, owner string) (Await, error) {
	ps, err := t.sys.Prepare(tmpl) // statement-cache hit after the first shape
	if err != nil {
		return nil, err
	}
	h, err := ps.SubmitBound(params, owner)
	if err != nil {
		return nil, err
	}
	return func(done <-chan struct{}) bool {
		_, ok := h.Wait(done)
		return ok
	}, nil
}

func (t localTarget) Read(sql string) error {
	_, err := t.sys.Query(sql)
	return err
}

func (t localTarget) Stats() coord.StatsSnapshot { return t.sys.Coordinator().Stats() }

// clientTarget submits through a wire-protocol client connection; every
// submission and every outcome crosses the TCP stack. The server's
// counters are cumulative over its lifetime, so the target snapshots them
// at construction and reports deltas — matching the fresh-System semantics
// of the in-process path, sweep point by sweep point.
type clientTarget struct {
	c    *server.Client
	base coord.StatsSnapshot

	// stmts caches the wire statement handle per template text, so each
	// distinct shape is prepared once per connection and every later
	// submission ships only the id + parameter vector.
	mu    sync.Mutex
	stmts map[string]*server.Stmt
}

// NewClientTarget wraps a server connection as a workload target. The
// server must already hold the travel catalog (e.g. youtopia-server -seed).
func NewClientTarget(c *server.Client) Target {
	base, _ := c.AdminStats(context.Background()) //nolint:errcheck // zero base on error
	return &clientTarget{c: c, base: base, stmts: make(map[string]*server.Stmt)}
}

func (t *clientTarget) Submit(sql, owner string) (Await, error) {
	_, ev, err := t.c.Submit(sql, owner)
	if err != nil {
		return nil, err
	}
	return awaitEvent(ev), nil
}

func (t *clientTarget) SubmitPrepared(tmpl string, params value.Tuple, owner string) (Await, error) {
	t.mu.Lock()
	st := t.stmts[tmpl]
	t.mu.Unlock()
	if st == nil {
		fresh, err := t.c.Prepare(tmpl)
		if err != nil {
			return nil, err
		}
		t.mu.Lock()
		if prior := t.stmts[tmpl]; prior != nil {
			t.mu.Unlock()
			// Lost a prepare race: use the winner's handle and release the
			// redundant server-side statement instead of leaking it in the
			// connection's table.
			fresh.Close() //nolint:errcheck // best effort
			st = prior
		} else {
			t.stmts[tmpl] = fresh
			t.mu.Unlock()
			st = fresh
		}
	}
	_, ev, err := st.SubmitContext(context.Background(), owner, params)
	if err != nil {
		return nil, err
	}
	return awaitEvent(ev), nil
}

func awaitEvent(ev <-chan server.Event) Await {
	return func(done <-chan struct{}) bool {
		select {
		case <-ev:
			return true
		case <-done:
			return false
		}
	}
}

func (t *clientTarget) Read(sql string) error {
	_, err := t.c.Query(sql)
	return err
}

func (t *clientTarget) Stats() coord.StatsSnapshot {
	st, err := t.c.AdminStats(context.Background())
	if err != nil {
		return coord.StatsSnapshot{}
	}
	return coord.StatsSnapshot{
		Submitted:         st.Submitted - t.base.Submitted,
		Answered:          st.Answered - t.base.Answered,
		Matches:           st.Matches - t.base.Matches,
		Parked:            st.Parked - t.base.Parked,
		Canceled:          st.Canceled - t.base.Canceled,
		Expired:           st.Expired - t.base.Expired,
		Retries:           st.Retries - t.base.Retries,
		Escalations:       st.Escalations - t.base.Escalations,
		NodesExplored:     st.NodesExplored - t.base.NodesExplored,
		GroundingAttempts: st.GroundingAttempts - t.base.GroundingAttempts,
		GroundingFailures: st.GroundingFailures - t.base.GroundingFailures,
	}
}

// Config parameterizes a generated workload.
type Config struct {
	// Pairs is the number of two-person coordinations to generate.
	Pairs int
	// GroupSize and Groups generate group coordinations (§3.1 "Group flight
	// booking"); each group member constrains every other member.
	GroupSize int
	Groups    int
	// Trip adds hotel coordination to every request (two answer atoms).
	Trip bool
	// Loners is the number of never-matching queries pre-loaded as pending
	// noise: their partners never arrive, so they sit in the pending tables
	// and tax every later coordination round.
	Loners int
	// Concurrency bounds concurrent submitters in Run (default 8).
	Concurrency int
	// PartnerDelay staggers pair arrivals: the second query of each pair is
	// submitted this long after the first, exercising the park→retry path
	// instead of the immediate-match path.
	PartnerDelay time.Duration
	// Footprints spreads pair and loner workloads across this many disjoint
	// answer relations (Reservation0..ReservationN-1) instead of the single
	// shared Reservation. Disjoint footprints route to independent
	// coordination lanes of a sharded coordinator, so concurrent pairs
	// match in parallel. Zero or one keeps the classic single relation.
	Footprints int
	// Seed drives destination/price jitter.
	Seed int64
	// NameOffset shifts every generated participant name (p<i>_a, g<i>_m<j>,
	// loner<i>) by this much. Successive runs against one long-lived server
	// (loadgen -net) use distinct offsets so a fresh run's constraints can
	// never be satisfied by answer tuples a previous run installed.
	NameOffset int
	// Prepared drives every arrival through the prepared-statement pipeline
	// (templates + bound parameter vectors) instead of rendering SQL text
	// per submission — loadgen's -prepared flag.
	Prepared bool
	// ReadFraction makes this share of open-system arrivals plain snapshot
	// point reads (SELECT by primary key) instead of coordination pairs —
	// loadgen's -reads flag. Read latencies are reported separately
	// (Result.ReadLatencies): under MVCC they stay flat while entangled
	// writers commit, which is the point of the experiment.
	ReadFraction float64
}

func (c Config) withDefaults() Config {
	if c.Concurrency == 0 {
		c.Concurrency = 8
	}
	if c.GroupSize == 0 {
		c.GroupSize = 4
	}
	return c
}

// Generator produces entangled-query SQL for synthetic participants.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator builds a generator.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// dest rotates destinations so load spreads across candidate sets.
func (g *Generator) dest(i int) string {
	return travel.Destinations[i%len(travel.Destinations)]
}

// rel returns the answer relation of workload item i: the shared Reservation
// classically, or one of Footprints disjoint relations when footprint
// spreading is on.
func (g *Generator) rel(i int) string {
	if g.cfg.Footprints <= 1 {
		return travel.RelFlight
	}
	return fmt.Sprintf("Reservation%d", i%g.cfg.Footprints)
}

// PairQueries returns the two symmetric queries of pair i.
func (g *Generator) PairQueries(i int) (string, string) {
	a := fmt.Sprintf("p%d_a", i+g.cfg.NameOffset)
	b := fmt.Sprintf("p%d_b", i+g.cfg.NameOffset)
	f := travel.FlightFilter{Dest: g.dest(i)}
	if g.cfg.Trip {
		h := travel.HotelFilter{City: g.dest(i)}
		return travel.BuildTripQuery(a, []string{b}, f, h), travel.BuildTripQuery(b, []string{a}, f, h)
	}
	rel := g.rel(i)
	return travel.BuildFlightQueryInto(rel, a, []string{b}, f), travel.BuildFlightQueryInto(rel, b, []string{a}, f)
}

// PairReqs returns pair i's two submissions, honoring Config.Prepared: in
// prepared mode both share the shape template (one per footprint relation)
// and differ only in their parameter vectors.
func (g *Generator) PairReqs(i int) (Req, Req) {
	if !g.cfg.Prepared {
		a, b := g.PairQueries(i)
		return Req{SQL: a}, Req{SQL: b}
	}
	a := fmt.Sprintf("p%d_a", i+g.cfg.NameOffset)
	b := fmt.Sprintf("p%d_b", i+g.cfg.NameOffset)
	f := travel.FlightFilter{Dest: g.dest(i)}
	if g.cfg.Trip {
		h := travel.HotelFilter{City: g.dest(i)}
		tmpl := travel.TripQueryTemplate(1, f, h)
		return Req{SQL: tmpl, Params: travel.TripQueryParams(a, []string{b}, f, h)},
			Req{SQL: tmpl, Params: travel.TripQueryParams(b, []string{a}, f, h)}
	}
	tmpl := travel.FlightQueryTemplate(g.rel(i), 1, f)
	return Req{SQL: tmpl, Params: travel.FlightQueryParams(a, []string{b}, f)},
		Req{SQL: tmpl, Params: travel.FlightQueryParams(b, []string{a}, f)}
}

// GroupQueries returns the GroupSize mutually-constraining queries of group i.
func (g *Generator) GroupQueries(i int) []string {
	names := make([]string, g.cfg.GroupSize)
	for j := range names {
		names[j] = fmt.Sprintf("g%d_m%d", i+g.cfg.NameOffset, j)
	}
	f := travel.FlightFilter{Dest: g.dest(i)}
	out := make([]string, len(names))
	for j, self := range names {
		var friends []string
		for k, o := range names {
			if k != j {
				friends = append(friends, o)
			}
		}
		if g.cfg.Trip {
			out[j] = travel.BuildTripQuery(self, friends, f, travel.HotelFilter{City: g.dest(i)})
		} else {
			out[j] = travel.BuildFlightQuery(self, friends, f)
		}
	}
	return out
}

// GroupReqs is GroupQueries honoring Config.Prepared.
func (g *Generator) GroupReqs(i int) []Req {
	if !g.cfg.Prepared {
		qs := g.GroupQueries(i)
		out := make([]Req, len(qs))
		for j, q := range qs {
			out[j] = Req{SQL: q}
		}
		return out
	}
	names := make([]string, g.cfg.GroupSize)
	for j := range names {
		names[j] = fmt.Sprintf("g%d_m%d", i+g.cfg.NameOffset, j)
	}
	f := travel.FlightFilter{Dest: g.dest(i)}
	h := travel.HotelFilter{City: g.dest(i)}
	out := make([]Req, len(names))
	for j, self := range names {
		var friends []string
		for k, o := range names {
			if k != j {
				friends = append(friends, o)
			}
		}
		if g.cfg.Trip {
			out[j] = Req{SQL: travel.TripQueryTemplate(len(friends), f, h),
				Params: travel.TripQueryParams(self, friends, f, h)}
		} else {
			out[j] = Req{SQL: travel.FlightQueryTemplate(travel.RelFlight, len(friends), f),
				Params: travel.FlightQueryParams(self, friends, f)}
		}
	}
	return out
}

// LonerQuery returns a query whose partner never arrives.
func (g *Generator) LonerQuery(i int) string {
	self := fmt.Sprintf("loner%d", i+g.cfg.NameOffset)
	ghost := fmt.Sprintf("ghost%d", i+g.cfg.NameOffset)
	return travel.BuildFlightQueryInto(g.rel(i), self, []string{ghost}, travel.FlightFilter{Dest: g.dest(i)})
}

// LonerReq is LonerQuery honoring Config.Prepared.
func (g *Generator) LonerReq(i int) Req {
	if !g.cfg.Prepared {
		return Req{SQL: g.LonerQuery(i)}
	}
	self := fmt.Sprintf("loner%d", i+g.cfg.NameOffset)
	ghost := fmt.Sprintf("ghost%d", i+g.cfg.NameOffset)
	f := travel.FlightFilter{Dest: g.dest(i)}
	return Req{SQL: travel.FlightQueryTemplate(g.rel(i), 1, f),
		Params: travel.FlightQueryParams(self, []string{ghost}, f)}
}

// ReadQuery returns a plain point SELECT by primary key — the snapshot-read
// side of a mixed workload. Flight numbers start at 100 and the default seed
// creates FlightsPerDest=8 per destination; rotating i over that range keeps
// every read a hit without coordinating with anything.
func (g *Generator) ReadQuery(i int) string {
	fno := 100 + i%(8*len(travel.Destinations))
	return fmt.Sprintf("SELECT fno, dest, price FROM Flights WHERE fno = %d", fno)
}

// Result aggregates a workload run.
type Result struct {
	Submitted   int
	Answered    int
	Unanswered  int
	Duration    time.Duration
	Latencies   []time.Duration // per answered query, submit→answer
	Reads       int             // plain snapshot reads issued (ReadFraction)
	ReadErrors  int
	ReadLats    []time.Duration // per completed read
	Coordinator coord.StatsSnapshot
}

// Throughput returns answered queries per second.
func (r Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Answered) / r.Duration.Seconds()
}

// AvgLatency returns the mean submit→answer latency.
func (r Result) AvgLatency() time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range r.Latencies {
		sum += l
	}
	return sum / time.Duration(len(r.Latencies))
}

// MaxLatency returns the worst submit→answer latency.
func (r Result) MaxLatency() time.Duration {
	var max time.Duration
	for _, l := range r.Latencies {
		if l > max {
			max = l
		}
	}
	return max
}

// String renders a one-line summary (used by cmd/loadgen).
func (r Result) String() string {
	s := fmt.Sprintf("submitted=%d answered=%d unanswered=%d dur=%s thpt=%.0f/s avg=%s max=%s",
		r.Submitted, r.Answered, r.Unanswered, r.Duration.Round(time.Millisecond),
		r.Throughput(), r.AvgLatency().Round(time.Microsecond), r.MaxLatency().Round(time.Microsecond))
	if r.Reads > 0 {
		s += fmt.Sprintf(" reads=%d read-p95=%s", r.Reads, r.PctReadLatency(95).Round(time.Microsecond))
	}
	return s
}

// NewSystem builds a Youtopia instance seeded with the travel catalog sized
// for workload runs. The coordinator gets the default GOMAXPROCS lanes.
func NewSystem(seed int64) (*core.System, error) {
	return NewSystemShards(seed, 0)
}

// NewSystemShards is NewSystem with an explicit coordination-lane count
// (0 = GOMAXPROCS, 1 = the unsharded A7 ablation).
func NewSystemShards(seed int64, shards int) (*core.System, error) {
	return NewSystemConfig(seed, core.Config{CoordShards: shards})
}

// NewSystemConfig is NewSystem over an arbitrary core.Config (WAL settings,
// lane count, ...); the matcher knobs and the travel seed are applied on
// top. loadgen's -durable mode uses this to measure committed-arrival
// throughput.
func NewSystemConfig(seed int64, cfg core.Config) (*core.System, error) {
	cfg.Coord = coord.Options{
		UseIndex: true, GroundSmallestFirst: true, Seed: seed,
		Shards: cfg.Coord.Shards,
	}
	sys := core.NewSystem(cfg)
	if err := sys.Err(); err != nil {
		return nil, err
	}
	// Disable auto-retry noise during bulk loading benchmarks: matches occur
	// on arrival anyway. Loaded-system runs re-enable retry explicitly.
	if err := travel.Seed(sys, travel.SeedConfig{Seed: seed}); err != nil {
		return nil, err
	}
	return sys, nil
}

// Run drives the configured workload against a system: first Loners, then
// all pairs and groups with Concurrency submitters, waiting for every
// non-loner to be answered. It returns aggregate metrics.
func Run(sys *core.System, cfg Config) (Result, error) {
	return RunTarget(NewLocalTarget(sys), cfg)
}

// RunTarget is Run over any workload target — in-process or a remote server
// connection (loadgen -net).
func RunTarget(tgt Target, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	g := NewGenerator(cfg)

	for i := 0; i < cfg.Loners; i++ {
		if _, err := submit(tgt, g.LonerReq(i), "loadgen"); err != nil {
			return Result{}, fmt.Errorf("loner %d: %w", i, err)
		}
	}

	type job struct{ queries []Req }
	var jobs []job
	for i := 0; i < cfg.Pairs; i++ {
		a, b := g.PairReqs(i)
		jobs = append(jobs, job{queries: []Req{a, b}})
	}
	for i := 0; i < cfg.Groups; i++ {
		jobs = append(jobs, job{queries: g.GroupReqs(i)})
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		answered  int
		firstErr  error
	)
	start := time.Now()
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			awaits := make([]Await, 0, len(j.queries))
			t0 := time.Now()
			for qi, q := range j.queries {
				if qi > 0 && cfg.PartnerDelay > 0 {
					time.Sleep(cfg.PartnerDelay)
				}
				aw, err := submit(tgt, q, "loadgen")
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				awaits = append(awaits, aw)
			}
			done := make(chan struct{})
			timer := time.AfterFunc(30*time.Second, func() { close(done) })
			defer timer.Stop()
			for _, aw := range awaits {
				if !aw(done) {
					return // unanswered within deadline
				}
				mu.Lock()
				answered++
				latencies = append(latencies, time.Since(t0))
				mu.Unlock()
			}
		}(j)
	}
	wg.Wait()
	dur := time.Since(start)
	if firstErr != nil {
		return Result{}, firstErr
	}
	submitted := cfg.Loners
	for _, j := range jobs {
		submitted += len(j.queries)
	}
	return Result{
		Submitted:   submitted,
		Answered:    answered,
		Unanswered:  submitted - answered - cfg.Loners,
		Duration:    dur,
		Latencies:   latencies,
		Coordinator: tgt.Stats(),
	}, nil
}

// AdHocChain submits a chain of n queries q1..qn where qi coordinates with
// q(i+1) on flights (and the last with the first via hotels when trip), an
// "arbitrary groups ... in flexible ways" stressor. Returns the sources.
func AdHocChain(n int, dest string) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("chain%d", i)
	}
	out := make([]string, n)
	for i, self := range names {
		next := names[(i+1)%n]
		out[i] = travel.BuildFlightQuery(self, []string{next}, travel.FlightFilter{Dest: dest})
	}
	return out
}

// JoinSources is a helper for printing generated workloads.
func JoinSources(srcs []string) string { return strings.Join(srcs, ";\n") }
