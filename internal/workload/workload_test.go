package workload

import (
	"strings"
	"testing"
	"time"
)

func TestGeneratorPairQueries(t *testing.T) {
	g := NewGenerator(Config{Pairs: 2})
	a, b := g.PairQueries(0)
	if !strings.Contains(a, "'p0_b'") || !strings.Contains(b, "'p0_a'") {
		t.Errorf("pair queries not symmetric:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "INTO ANSWER Reservation") {
		t.Errorf("missing answer relation: %s", a)
	}
}

func TestGeneratorTripQueries(t *testing.T) {
	g := NewGenerator(Config{Pairs: 1, Trip: true})
	a, _ := g.PairQueries(0)
	if !strings.Contains(a, "HotelReservation") {
		t.Errorf("trip query lacks hotel atom: %s", a)
	}
}

func TestGeneratorGroupQueries(t *testing.T) {
	g := NewGenerator(Config{GroupSize: 4})
	qs := g.GroupQueries(0)
	if len(qs) != 4 {
		t.Fatalf("group size = %d", len(qs))
	}
	// Each member constrains the other three ("IN ANSWER"; the head clause
	// spells "INTO ANSWER", which does not contain the substring).
	if got := strings.Count(qs[0], "IN ANSWER"); got != 3 {
		t.Errorf("constraints in %q: %d, want 3", qs[0], got)
	}
}

func TestRunPairsSmall(t *testing.T) {
	sys, err := NewSystem(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, Config{Pairs: 5, Concurrency: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answered != 10 || res.Unanswered != 0 {
		t.Errorf("result = %s", res)
	}
	if res.Coordinator.Matches != 5 {
		t.Errorf("matches = %d", res.Coordinator.Matches)
	}
	if res.AvgLatency() <= 0 || res.MaxLatency() < res.AvgLatency() {
		t.Errorf("latencies: avg=%s max=%s", res.AvgLatency(), res.MaxLatency())
	}
	if res.Throughput() <= 0 {
		t.Error("throughput")
	}
}

func TestRunGroups(t *testing.T) {
	sys, err := NewSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, Config{Groups: 3, GroupSize: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answered != 9 {
		t.Errorf("answered = %d, want 9", res.Answered)
	}
}

func TestRunWithLoners(t *testing.T) {
	sys, err := NewSystem(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, Config{Pairs: 3, Loners: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answered != 6 {
		t.Errorf("answered = %d", res.Answered)
	}
	if sys.Coordinator().PendingCount() != 10 {
		t.Errorf("pending = %d, want the 10 loners", sys.Coordinator().PendingCount())
	}
}

func TestRunOpenPoisson(t *testing.T) {
	sys, err := NewSystem(9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOpen(sys, Config{Seed: 9}, 500, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted < 2 {
		t.Fatalf("no arrivals in window: %+v", res)
	}
	if res.Answered != res.Submitted {
		t.Errorf("answered %d of %d", res.Answered, res.Submitted)
	}
	if res.PctLatency(50) <= 0 || res.PctLatency(99) < res.PctLatency(50) {
		t.Errorf("percentiles: p50=%s p99=%s", res.PctLatency(50), res.PctLatency(99))
	}
	if _, err := RunOpen(sys, Config{}, 0, time.Millisecond); err == nil {
		t.Error("rate 0 accepted")
	}
}

func TestPartnerDelayStaggersMatching(t *testing.T) {
	sys, err := NewSystem(10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, Config{Pairs: 3, PartnerDelay: 5 * time.Millisecond, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answered != 6 {
		t.Fatalf("answered = %d", res.Answered)
	}
	// Latency includes the stagger.
	if res.AvgLatency() < 5*time.Millisecond {
		t.Errorf("avg latency %s below the partner delay", res.AvgLatency())
	}
}

func TestAdHocChainMatches(t *testing.T) {
	sys, err := NewSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	srcs := AdHocChain(5, "Paris")
	if len(srcs) != 5 {
		t.Fatal("chain size")
	}
	if !strings.Contains(JoinSources(srcs), "chain4") {
		t.Error("JoinSources lost a member")
	}
	for _, src := range srcs {
		if _, err := sys.Submit(src, "chain"); err != nil {
			t.Fatal(err)
		}
	}
	// The full 5-cycle should have matched on the last arrival.
	if sys.Coordinator().PendingCount() != 0 {
		t.Errorf("pending = %d; chain did not close", sys.Coordinator().PendingCount())
	}
}
