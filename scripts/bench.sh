#!/usr/bin/env bash
# bench.sh — run the E1–E19 experiment suite with -benchmem and emit a
# machine-readable JSON file mapping each benchmark to ns/op, B/op and
# allocs/op, so the repo accumulates a perf trajectory run over run.
#
# Usage:
#   scripts/bench.sh [benchtime]     # default 20x; CI uses 20x to match the
#                                    # frozen baseline's warmup amortization
#
# Environment:
#   OUT=path.json   output file (default BENCH_PR10.json at the repo root)
#
# Benchmarks run at -cpu 1 so allocs/op — the container-stable metric the
# perf gate (bench_gate.sh) compares — is deterministic across machines with
# different core counts (lane counts default to GOMAXPROCS). ns/op remains
# report-only. E11 raises GOMAXPROCS internally for its 8 durable writers.
#
# If scripts/bench_baseline_pr10.json exists (the frozen pre-PR-10 numbers,
# plus the E19 concurrent-cold-scan benchmark frozen at its introduction),
# its contents are embedded under "baseline" so before/after always travel
# together in one artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-20x}"
out="${OUT:-BENCH_PR10.json}"
raw="$(go test -run '^$' -bench 'BenchmarkE[0-9]+_' -benchmem -benchtime "$benchtime" -cpu 1 .)"
echo "$raw"

BENCH_RAW="$raw" BENCH_TIME="$benchtime" BENCH_OUT="$out" python3 - <<'EOF'
import json, os, re

raw = os.environ["BENCH_RAW"]
current = {}
for line in raw.splitlines():
    if not line.startswith("Benchmark"):
        continue
    fields = line.split()
    name = re.sub(r"-\d+$", "", fields[0])
    entry = {}
    for i, f in enumerate(fields):
        if f == "ns/op":
            entry["ns_op"] = float(fields[i - 1])
        elif f == "B/op":
            entry["b_op"] = int(fields[i - 1])
        elif f == "allocs/op":
            entry["allocs_op"] = int(fields[i - 1])
    if entry:
        current[name] = entry

doc = {"benchtime": os.environ["BENCH_TIME"], "current": current}
base_path = os.path.join("scripts", "bench_baseline_pr10.json")
if os.path.exists(base_path):
    with open(base_path) as f:
        doc["baseline"] = json.load(f)

out = os.environ["BENCH_OUT"]
with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out} ({len(current)} benchmarks)")
EOF
