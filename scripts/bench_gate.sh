#!/usr/bin/env bash
# bench_gate.sh — the perf-regression gate. Reads the artifact bench.sh just
# wrote and fails if allocs/op on any benchmark tracked by the frozen
# baseline regressed more than 10% (with a +2 absolute slack so 1-2 alloc
# jitter on tiny benchmarks cannot trip it).
#
# allocs/op is the gate metric because it is deterministic on a given code
# revision; ns/op swings ±50% on shared runners and is reported only.
#
# Usage:
#   scripts/bench_gate.sh [artifact.json]   # default BENCH_PR10.json
set -euo pipefail
cd "$(dirname "$0")/.."

artifact="${1:-BENCH_PR10.json}"
if [ ! -f "$artifact" ]; then
  echo "bench_gate: $artifact not found — run scripts/bench.sh first" >&2
  exit 1
fi

GATE_ARTIFACT="$artifact" python3 - <<'EOF'
import json, os, sys

with open(os.environ["GATE_ARTIFACT"]) as f:
    doc = json.load(f)

current = doc.get("current", {})
baseline = doc.get("baseline", {}).get("benchmarks", {})
if not baseline:
    print("bench_gate: no frozen baseline embedded; nothing to gate")
    sys.exit(0)

THRESHOLD, SLACK = 1.10, 2
failures, rows = [], []
for name in sorted(baseline):
    base = baseline[name].get("allocs_op")
    cur = current.get(name, {}).get("allocs_op")
    if base is None:
        continue
    if cur is None:
        failures.append(f"{name}: tracked benchmark missing from current run")
        continue
    limit = max(base * THRESHOLD, base + SLACK)
    verdict = "ok" if cur <= limit else "REGRESSED"
    ns_base = baseline[name].get("ns_op")
    ns_cur = current.get(name, {}).get("ns_op")
    ns_note = ""
    if ns_base and ns_cur:
        ns_note = f"  (ns/op {ns_base:.0f} -> {ns_cur:.0f}, report-only)"
    rows.append(f"  {verdict:9s} {name}: allocs/op {base} -> {cur} (limit {limit:.0f}){ns_note}")
    if cur > limit:
        failures.append(f"{name}: allocs/op {base} -> {cur} (> {limit:.0f})")

print(f"bench_gate: {len(rows)} tracked benchmarks vs frozen baseline "
      f"({doc.get('baseline', {}).get('frozen_at', '?')})")
for r in rows:
    print(r)
if failures:
    print("\nbench_gate: FAIL")
    for f_ in failures:
        print("  " + f_)
    sys.exit(1)
print("\nbench_gate: PASS")
EOF
